// netcache_sim — command-line front end to the NetCache simulation library.
//
// Subcommands:
//   rack       packet-level rack simulation (DES): goodput, latency, hits
//   sweep      grid of independent rack trials (zipf x cache x reps), run on
//              a thread pool; output is byte-identical to --serial
//   saturate   capacity-model saturation throughput for one configuration
//   multirack  multi-rack scalability model (NoCache/LeafCache/LeafSpine)
//   snake      §7.1 snake-test harness
//
// Every subcommand accepts --metrics-out=FILE.json for a machine-readable
// result; `rack` additionally supports time-sampled metrics
// (--metrics-interval, Fig-11-style per-bin dynamics) and packet-lifecycle
// tracing (--trace-out=FILE.jsonl, --trace-limit). With a fixed --seed two
// runs produce byte-identical metrics output.
//
// Examples:
//   netcache_sim rack --servers=16 --rate=50000 --zipf=0.99 --cache=200
//                     --offered=400000 --duration=0.5
//                     --metrics-out=m.json --metrics-interval=0.1
//                     --trace-out=t.jsonl --trace-limit=100000
//   netcache_sim saturate --partitions=128 --rate=1e7 --zipf=0.95 --cache=10000
//   netcache_sim multirack --racks=16 --mode=leafspine
//   netcache_sim snake --ports=64 --queries=1000

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "client/workload_driver.h"
#include "common/cli.h"
#include "common/json_writer.h"
#include "common/lp_ownership.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/simd.h"
#include "common/trace_recorder.h"
#include "core/multirack.h"
#include "core/rack.h"
#include "core/saturation.h"
#include "core/snake.h"
#include "core/sweep.h"
#include "verify/checker_runner.h"
#include "verify/rack_checkers.h"
#include "workload/trace.h"

namespace netcache {
namespace {

int Usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s <rack|sweep|saturate|multirack|snake> [--flag=value ...]\n"
               "\n"
               "rack:      --servers --rate --keys --zipf --cache --offered --duration\n"
               "           --write-ratio --skewed-writes --no-cache --cores --seed\n"
               "           --no-burst (disable same-instant delivery coalescing)\n"
               "           --no-egress-batch (ship transmit groups as per-packet\n"
               "                              delivery records; byte-identical output)\n"
               "           --sim-threads=N (parallel DES: one logical process per\n"
               "                            server plus one for switch+clients, run\n"
               "                            on N threads; 0=serial dispatcher;\n"
               "                            byte-identical for every N >= 1)\n"
               "           --trace=FILE (replay a G/P/D trace instead of synthetic load)\n"
               "sweep:     --zipf=A[,B...] --cache=N[,M...] --reps --seed --threads\n"
               "           --serial --servers --rate --keys --offered --duration\n"
               "           --write-ratio --skewed-writes --cores\n"
               "saturate:  --partitions --rate --keys --zipf --cache --write-ratio\n"
               "           --skewed-writes --write-back\n"
               "multirack: --racks --servers-per-rack --rate --spines --cache\n"
               "           --mode=nocache|leaf|leafspine\n"
               "snake:     --ports --queries --cache --value-size\n"
               "\n"
               "observability (all subcommands):\n"
               "           --metrics-out=FILE.json   structured result / registry dump\n"
               "           --check-invariants[=SECS] runtime invariant checking; on rack,\n"
               "                                     re-check every SECS simulated seconds\n"
               "                                     (default 0.05) plus a final sweep;\n"
               "                                     exits 1 on any violation\n"
               "           --lp-checks               runtime LP-ownership sanitizer: abort\n"
               "                                     with an attributed diagnostic if any\n"
               "                                     event touches state owned by another\n"
               "                                     logical process (parallel DES)\n"
               "           --no-simd                 force the scalar SIMD level (same as\n"
               "                                     NETCACHE_SIMD=OFF); output is\n"
               "                                     byte-identical either way\n"
               "rack only: --metrics-interval=SECS   time-series sampling bin (default 0.1)\n"
               "           --trace-out=FILE.jsonl    packet-lifecycle span events\n"
               "           --trace-limit=N           trace ring-buffer capacity (default 65536)\n"
               "           --profile-out=FILE.json   wall-clock profile (Chrome trace JSON,\n"
               "                                     Perfetto-loadable; aggregate with\n"
               "                                     tools/profile_report.py)\n"
               "           --profile-limit=N         timeline spans kept per thread\n"
               "                                     (default 262144; aggregates are exact\n"
               "                                     regardless)\n",
               program);
  return 2;
}

// Parses --check-invariants[=SECS]. Returns true when the flag is present and
// stores the re-check interval (simulated seconds; 0.05 when given bare) in
// *interval_s. Stores a negative value on a malformed interval.
bool ParseCheckInvariants(ArgParser& args, double* interval_s) {
  if (!args.Has("check-invariants")) {
    return false;
  }
  // Bare `--check-invariants` is stored as "true" by the parser; GetDouble on
  // it would record a parse error, so read the raw string.
  std::string raw = args.GetString("check-invariants", "true");
  if (raw == "true") {
    *interval_s = 0.05;
    return true;
  }
  char* end = nullptr;
  double secs = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0' || !(secs > 0)) {
    std::fprintf(stderr, "--check-invariants interval '%s' is not a positive number\n",
                 raw.c_str());
    *interval_s = -1;
    return true;
  }
  *interval_s = secs;
  return true;
}

// Prints the checker-runner summary line and returns the process exit code
// contribution: 1 when any invariant was violated, 0 otherwise.
int ReportInvariantResults(const CheckerRunner& runner) {
  std::printf("invariants      %llu checks over %llu sweeps, %llu violations\n",
              static_cast<unsigned long long>(runner.checks_run()),
              static_cast<unsigned long long>(runner.runs()),
              static_cast<unsigned long long>(runner.total_violations()));
  return runner.total_violations() > 0 ? 1 : 0;
}

// Opens `path` for writing, runs `fill(writer)` on a JsonWriter over it, and
// reports failures on stderr. Returns false on I/O errors.
template <typename Fill>
bool WriteJsonFile(const std::string& path, Fill&& fill) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  JsonWriter w(out);
  fill(w);
  out << "\n";
  return out.good();
}

int RunRack(ArgParser& args) {
  RackConfig cfg;
  cfg.num_servers = static_cast<size_t>(args.GetInt("servers", 8));
  cfg.cache_enabled = !args.GetBool("no-cache", false);
  cfg.switch_config.num_pipes = 1;
  size_t cache = static_cast<size_t>(args.GetInt("cache", 1000));
  cfg.switch_config.cache_capacity = std::max<size_t>(4096, cache);
  cfg.switch_config.indexes_per_pipe = cfg.switch_config.cache_capacity;
  cfg.switch_config.stats.counter_slots = cfg.switch_config.cache_capacity;
  cfg.server_template.service_rate_qps = args.GetDouble("rate", 50e3);
  cfg.server_template.num_cores = static_cast<size_t>(args.GetInt("cores", 1));
  cfg.client_template.reply_timeout = 10 * kMillisecond;
  cfg.controller_config.cache_capacity = cache;

  uint64_t num_keys = static_cast<uint64_t>(args.GetInt("keys", 100000));
  double duration_s = args.GetDouble("duration", 0.5);
  std::string metrics_out = args.GetString("metrics-out", "");
  double metrics_interval_s = args.GetDouble("metrics-interval", 0.1);
  std::string trace_out = args.GetString("trace-out", "");
  std::string profile_out = args.GetString("profile-out", "");
  size_t profile_limit = static_cast<size_t>(args.GetInt("profile-limit", 1 << 18));
  size_t sim_threads_requested = static_cast<size_t>(args.GetInt("sim-threads", 0));
  cfg.sim_threads = sim_threads_requested;
  // --trace-out no longer constrains --sim-threads: every record carries a
  // (stream, seq) stamp and WriteJsonl sorts by (t, stream, seq), so the
  // serialized trace is byte-identical at any worker count as long as the
  // ring did not wrap (checked after the run).
  size_t trace_limit = static_cast<size_t>(args.GetInt("trace-limit", 65536));
  double check_interval_s = 0;
  bool check_invariants = ParseCheckInvariants(args, &check_interval_s);
  if (!args.ok()) {
    return 2;
  }
  if (metrics_interval_s <= 0) {
    std::fprintf(stderr, "--metrics-interval must be positive\n");
    return 2;
  }
  if (check_invariants && check_interval_s < 0) {
    return 2;
  }

  // Declared before the Rack so it outlives the simulator: a window worker
  // may still hold the profiler pointer it loaded at span entry when the
  // profiler is uninstalled (see common/profiler.h, "Ownership").
  std::unique_ptr<Profiler> profiler;

  Rack rack(cfg);
  // Burst coalescing must produce byte-identical output (determinism_test leg
  // 3 diffs this against the default); the flag exists to prove it.
  rack.sim().set_burst_coalescing(!args.GetBool("no-burst", false));
  // Same contract for egress batching: transmit groups ship as one burst
  // record or as per-packet records, with identical timing and counters
  // either way (determinism_test holds the legs together byte-for-byte).
  rack.sim().set_egress_batching(!args.GetBool("no-egress-batch", false));
  // The effective worker count can differ from the request: a zero-lookahead
  // topology falls back to the serial dispatcher. Recorded in the metrics
  // JSON when they differ so downstream comparisons see what actually ran.
  size_t sim_threads_effective =
      rack.sim().partitioned() ? rack.sim().sim_threads() : 0;
  if (!profile_out.empty()) {
    Profiler::Options popts;
    popts.spans_per_lane = profile_limit;
    popts.max_lps = rack.sim().num_lps() + 1;
    profiler = std::make_unique<Profiler>(popts);
    InstallProfiler(profiler.get());
  }
  rack.Populate(num_keys, 128);
  if (check_invariants) {
    rack.EnableInvariantChecks(static_cast<SimDuration>(check_interval_s * 1e9));
  }

  // Install the trace ring before any traffic so the first client_send of
  // each early query is captured too.
  std::unique_ptr<TraceRecorder> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<TraceRecorder>(trace_limit);
    InstallTraceRecorder(tracer.get());
  }

  WorkloadConfig wl;
  wl.num_keys = num_keys;
  wl.zipf_alpha = args.GetDouble("zipf", 0.99);
  wl.write_ratio = args.GetDouble("write-ratio", 0.0);
  wl.skewed_writes = args.GetBool("skewed-writes", false);
  wl.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  WorkloadGenerator gen(wl);

  if (cfg.cache_enabled) {
    std::vector<Key> hot;
    for (uint64_t id : gen.popularity().TopKeys(std::min<uint64_t>(cache, num_keys))) {
      hot.push_back(Key::FromUint64(id));
    }
    rack.WarmCache(hot);
    rack.StartController();
  }

  DriverConfig dc;
  dc.rate_qps = args.GetDouble("offered", 100e3);
  std::unique_ptr<TraceReplayer> replay;
  std::string trace_path = args.GetString("trace", "");
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      std::fprintf(stderr, "cannot open trace '%s'\n", trace_path.c_str());
      return 1;
    }
    Result<std::vector<TraceRecord>> records = ParseTrace(in);
    if (!records.ok()) {
      std::fprintf(stderr, "trace error: %s\n", records.status().ToString().c_str());
      return 1;
    }
    if (records->empty()) {
      std::fprintf(stderr, "trace '%s' contains no records\n", trace_path.c_str());
      return 1;
    }
    replay = std::make_unique<TraceReplayer>(std::move(*records), /*loop=*/true);
  }
  WorkloadDriver::QuerySource source =
      replay ? WorkloadDriver::QuerySource([&replay] { return *replay->Next(); })
             : WorkloadDriver::QuerySource([&gen] { return gen.Next(); });
  WorkloadDriver driver(&rack.sim(), &rack.client(0), std::move(source), rack.OwnerFn(), dc);

  std::unique_ptr<MetricsPoller> poller;
  if (!metrics_out.empty()) {
    poller = std::make_unique<MetricsPoller>(
        &rack.sim(), &rack.metrics(),
        static_cast<SimDuration>(metrics_interval_s * 1e9));
    poller->Start();
  }

  driver.Start();
  rack.sim().RunUntil(static_cast<SimTime>(duration_s * 1e9));
  driver.Stop();
  if (poller != nullptr) {
    poller->Stop();
  }
  rack.sim().RunUntil(rack.sim().Now() + 20 * kMillisecond);
  if (check_invariants) {
    // Final sweep at quiesce: all packets drained, so conservation and
    // coherence must hold exactly.
    rack.invariant_runner()->Stop();
    rack.invariant_runner()->RunOnce();
  }

  const Histogram& lat = rack.client(0).latency();
  const SwitchCounters& sc = rack.tor().counters();
  std::printf("sent            %llu\n", static_cast<unsigned long long>(driver.sent()));
  std::printf("completed       %llu (%.1f%% of sent)\n",
              static_cast<unsigned long long>(driver.completed()),
              100.0 * static_cast<double>(driver.completed()) /
                  static_cast<double>(std::max<uint64_t>(driver.sent(), 1)));
  std::printf("goodput         %.0f q/s\n",
              static_cast<double>(driver.completed()) / duration_s);
  std::printf("latency         avg %.1f us, p50 %.1f us, p99 %.1f us\n", lat.Mean() / 1e3,
              static_cast<double>(lat.Quantile(0.5)) / 1e3,
              static_cast<double>(lat.Quantile(0.99)) / 1e3);
  std::printf("switch          hits %llu, misses %llu, invalid %llu, hot reports %llu\n",
              static_cast<unsigned long long>(sc.cache_hits),
              static_cast<unsigned long long>(sc.cache_misses),
              static_cast<unsigned long long>(sc.cache_invalid),
              static_cast<unsigned long long>(sc.hot_reports));
  uint64_t dropped = 0;
  for (size_t i = 0; i < rack.num_servers(); ++i) {
    dropped += rack.server(i).stats().dropped;
  }
  std::printf("servers         shed %llu queries\n", static_cast<unsigned long long>(dropped));
  if (cfg.cache_enabled) {
    std::printf("controller      %llu insertions, %llu evictions\n",
                static_cast<unsigned long long>(rack.controller().stats().insertions),
                static_cast<unsigned long long>(rack.controller().stats().evictions));
  }

  int rc = 0;
  if (check_invariants) {
    rc = std::max(rc, ReportInvariantResults(*rack.invariant_runner()));
  }
  if (tracer != nullptr) {
    InstallTraceRecorder(nullptr);
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", trace_out.c_str());
      rc = 1;
    } else {
      tracer->WriteJsonl(out);
      std::printf("trace           %llu events to %s (%llu overwritten)\n",
                  static_cast<unsigned long long>(tracer->size()), trace_out.c_str(),
                  static_cast<unsigned long long>(tracer->dropped()));
      if (tracer->dropped() > 0 && cfg.sim_threads > 1) {
        std::fprintf(stderr,
                     "warning: trace ring wrapped under a multi-worker run; "
                     "WHICH events survived is schedule-dependent — raise "
                     "--trace-limit for a byte-stable trace\n");
      }
    }
  }
  if (profiler != nullptr) {
    InstallProfiler(nullptr);
    std::ofstream out(profile_out);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", profile_out.c_str());
      rc = 1;
    } else {
      profiler->WriteChromeTrace(out);
      out << "\n";
      if (!out.good()) {
        std::fprintf(stderr, "write to '%s' failed\n", profile_out.c_str());
        rc = 1;
      } else {
        std::printf("profile         %llu spans in %zu lane(s) to %s (%llu dropped)\n",
                    static_cast<unsigned long long>(profiler->spans_recorded()),
                    profiler->lanes_used(), profile_out.c_str(),
                    static_cast<unsigned long long>(profiler->spans_dropped()));
      }
    }
  }
  if (!metrics_out.empty()) {
    bool ok = WriteJsonFile(metrics_out, [&](JsonWriter& w) {
      w.BeginObject();
      w.Field("command", "rack");
      // Execution config that affects comparability. `schedule` says which
      // dispatcher actually ran; `sim_threads_effective` appears only when
      // it differs from the requested --sim-threads (zero-lookahead
      // fallback) — an unconditional field would break the determinism legs
      // that byte-diff --sim-threads=1 against =4.
      w.Name("config");
      w.BeginObject();
      w.Field("schedule", rack.sim().partitioned() ? "windowed" : "serial");
      if (sim_threads_effective != sim_threads_requested) {
        w.Field("sim_threads_effective", static_cast<uint64_t>(sim_threads_effective));
      }
      // "avx2" | "scalar". The determinism leg that diffs --no-simd against
      // a native run strips this line before comparing (it is the one
      // intended difference).
      w.Field("simd_level", ActiveSimdLevelName());
      w.EndObject();
      w.Field("sim_time_ns", static_cast<uint64_t>(rack.sim().Now()));
      w.Field("duration_s", duration_s);
      w.Field("sent", driver.sent());
      w.Field("completed", driver.completed());
      w.Name("metrics");
      w.BeginObject();
      rack.metrics().WriteJson(w);
      w.EndObject();
      w.Name("timeseries");
      w.BeginObject();
      poller->WriteJson(w);
      w.EndObject();
      w.EndObject();
    });
    if (!ok) {
      rc = 1;
    } else {
      std::printf("metrics         %zu series x %llu samples to %s\n",
                  poller->series().size(),
                  static_cast<unsigned long long>(poller->samples_taken()),
                  metrics_out.c_str());
    }
  }
  return rc;
}

// Splits a comma-separated flag value ("0.9,0.95,0.99") into doubles.
// Returns false (and reports on stderr) on any malformed element.
bool ParseDoubleList(const std::string& raw, const char* flag, std::vector<double>* out) {
  size_t start = 0;
  while (start <= raw.size()) {
    size_t comma = raw.find(',', start);
    std::string piece = raw.substr(start, comma == std::string::npos ? comma : comma - start);
    char* end = nullptr;
    double v = std::strtod(piece.c_str(), &end);
    if (piece.empty() || end == piece.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s: '%s' is not a number\n", flag, piece.c_str());
      return false;
    }
    out->push_back(v);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return !out->empty();
}

bool ParseSizeList(const std::string& raw, const char* flag, std::vector<size_t>* out) {
  std::vector<double> values;
  if (!ParseDoubleList(raw, flag, &values)) {
    return false;
  }
  for (double v : values) {
    if (v < 0 || v != static_cast<double>(static_cast<uint64_t>(v))) {
      std::fprintf(stderr, "--%s: '%g' is not a non-negative integer\n", flag, v);
      return false;
    }
    out->push_back(static_cast<size_t>(v));
  }
  return true;
}

// Trial-independent sweep parameters (shared read-only across workers).
struct SweepShared {
  size_t servers = 8;
  size_t cores = 1;
  double rate = 50e3;
  uint64_t keys = 10'000;
  double offered = 100e3;
  double duration_s = 0.1;
  double write_ratio = 0.0;
  bool skewed_writes = false;
};

// One grid point: a (zipf, cache-size) configuration and its repetition id.
struct SweepPoint {
  double zipf = 0.99;
  size_t cache = 1000;
  size_t rep = 0;
};

// Paper metrics of one finished trial. Every field is a deterministic
// function of (shared, point, seed) — no wall-clock anywhere, so serial and
// parallel sweeps print byte-identical tables.
struct SweepOutcome {
  SweepPoint point;
  uint64_t seed = 0;
  uint64_t sent = 0;
  uint64_t completed = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t dropped = 0;
  double avg_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t events = 0;
};

SweepOutcome RunSweepTrial(const SweepShared& shared, const SweepPoint& point, uint64_t seed) {
  RackConfig cfg;
  cfg.num_servers = shared.servers;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = std::max<size_t>(4096, point.cache);
  cfg.switch_config.indexes_per_pipe = cfg.switch_config.cache_capacity;
  cfg.switch_config.stats.counter_slots = cfg.switch_config.cache_capacity;
  cfg.server_template.service_rate_qps = shared.rate;
  cfg.server_template.num_cores = shared.cores;
  cfg.client_template.reply_timeout = 10 * kMillisecond;
  cfg.controller_config.cache_capacity = point.cache;

  Rack rack(cfg);
  rack.Populate(shared.keys, 128);

  WorkloadConfig wl;
  wl.num_keys = shared.keys;
  wl.zipf_alpha = point.zipf;
  wl.write_ratio = shared.write_ratio;
  wl.skewed_writes = shared.skewed_writes;
  wl.seed = seed;
  WorkloadGenerator gen(wl);

  std::vector<Key> hot;
  for (uint64_t id : gen.popularity().TopKeys(std::min<uint64_t>(point.cache, shared.keys))) {
    hot.push_back(Key::FromUint64(id));
  }
  rack.WarmCache(hot);
  rack.StartController();

  DriverConfig dc;
  dc.rate_qps = shared.offered;
  WorkloadDriver driver(&rack.sim(), &rack.client(0),
                        WorkloadDriver::QuerySource([&gen] { return gen.Next(); }),
                        rack.OwnerFn(), dc);
  driver.Start();
  rack.sim().RunUntil(static_cast<SimTime>(shared.duration_s * 1e9));
  driver.Stop();
  rack.sim().RunUntil(rack.sim().Now() + 20 * kMillisecond);

  SweepOutcome out;
  out.point = point;
  out.seed = seed;
  out.sent = driver.sent();
  out.completed = driver.completed();
  const SwitchCounters& sc = rack.tor().counters();
  out.hits = sc.cache_hits;
  out.misses = sc.cache_misses;
  for (size_t i = 0; i < rack.num_servers(); ++i) {
    out.dropped += rack.server(i).stats().dropped;
  }
  const Histogram& lat = rack.client(0).latency();
  out.avg_us = lat.Mean() / 1e3;
  out.p50_us = static_cast<double>(lat.Quantile(0.5)) / 1e3;
  out.p99_us = static_cast<double>(lat.Quantile(0.99)) / 1e3;
  out.events = rack.sim().events_processed();
  return out;
}

int RunSweep(ArgParser& args) {
  SweepShared shared;
  shared.servers = static_cast<size_t>(args.GetInt("servers", 8));
  shared.cores = static_cast<size_t>(args.GetInt("cores", 1));
  shared.rate = args.GetDouble("rate", 50e3);
  shared.keys = static_cast<uint64_t>(args.GetInt("keys", 10'000));
  shared.offered = args.GetDouble("offered", 100e3);
  shared.duration_s = args.GetDouble("duration", 0.1);
  shared.write_ratio = args.GetDouble("write-ratio", 0.0);
  shared.skewed_writes = args.GetBool("skewed-writes", false);

  std::vector<double> zipfs;
  std::vector<size_t> caches;
  if (!ParseDoubleList(args.GetString("zipf", "0.9,0.95,0.99"), "zipf", &zipfs) ||
      !ParseSizeList(args.GetString("cache", "1000"), "cache", &caches)) {
    return 2;
  }
  size_t reps = static_cast<size_t>(args.GetInt("reps", 1));

  SweepOptions opts;
  opts.root_seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  opts.threads = static_cast<size_t>(args.GetInt("threads", 0));
  opts.serial = args.GetBool("serial", false);
  std::string metrics_out = args.GetString("metrics-out", "");
  if (!args.ok()) {
    return 2;
  }
  if (reps == 0 || shared.duration_s <= 0) {
    std::fprintf(stderr, "--reps and --duration must be positive\n");
    return 2;
  }

  std::vector<SweepPoint> grid;
  for (double zipf : zipfs) {
    for (size_t cache : caches) {
      for (size_t rep = 0; rep < reps; ++rep) {
        grid.push_back(SweepPoint{zipf, cache, rep});
      }
    }
  }

  // NOTE: output deliberately never mentions thread count or timing — the
  // determinism test diffs --serial against --threads=N byte-for-byte.
  std::vector<SweepOutcome> outcomes = RunSweep(
      grid, opts,
      [&shared](const SweepPoint& point, uint64_t seed, size_t /*index*/) {
        return RunSweepTrial(shared, point, seed);
      });

  std::printf("sweep           %zu trials (%zu zipf x %zu cache x %zu reps)\n", grid.size(),
              zipfs.size(), caches.size(), reps);
  for (const SweepOutcome& o : outcomes) {
    std::printf("zipf=%.3f cache=%zu rep=%zu sent=%llu completed=%llu hits=%llu misses=%llu "
                "shed=%llu avg_us=%.2f p50_us=%.2f p99_us=%.2f events=%llu\n",
                o.point.zipf, o.point.cache, o.point.rep,
                static_cast<unsigned long long>(o.sent),
                static_cast<unsigned long long>(o.completed),
                static_cast<unsigned long long>(o.hits),
                static_cast<unsigned long long>(o.misses),
                static_cast<unsigned long long>(o.dropped), o.avg_us, o.p50_us, o.p99_us,
                static_cast<unsigned long long>(o.events));
  }

  if (!metrics_out.empty()) {
    bool ok = WriteJsonFile(metrics_out, [&](JsonWriter& w) {
      w.BeginObject();
      w.Field("command", "sweep");
      w.Field("root_seed", opts.root_seed);
      w.Field("trials", static_cast<uint64_t>(grid.size()));
      w.Field("duration_s", shared.duration_s);
      w.Name("results");
      w.BeginArray();
      for (const SweepOutcome& o : outcomes) {
        w.BeginObject();
        w.Field("zipf", o.point.zipf);
        w.Field("cache", static_cast<uint64_t>(o.point.cache));
        w.Field("rep", static_cast<uint64_t>(o.point.rep));
        w.Field("seed", o.seed);
        w.Field("sent", o.sent);
        w.Field("completed", o.completed);
        w.Field("cache_hits", o.hits);
        w.Field("cache_misses", o.misses);
        w.Field("server_shed", o.dropped);
        w.Field("latency_avg_us", o.avg_us);
        w.Field("latency_p50_us", o.p50_us);
        w.Field("latency_p99_us", o.p99_us);
        w.Field("events", o.events);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    });
    if (!ok) {
      return 1;
    }
  }
  return 0;
}

int RunSaturate(ArgParser& args) {
  SaturationConfig cfg;
  cfg.num_partitions = static_cast<size_t>(args.GetInt("partitions", 128));
  cfg.server_rate_qps = args.GetDouble("rate", 10e6);
  cfg.num_keys = static_cast<uint64_t>(args.GetInt("keys", 100'000'000));
  cfg.zipf_alpha = args.GetDouble("zipf", 0.99);
  cfg.cache_size = static_cast<size_t>(args.GetInt("cache", 10'000));
  cfg.write_ratio = args.GetDouble("write-ratio", 0.0);
  cfg.skewed_writes = args.GetBool("skewed-writes", false);
  cfg.write_back = args.GetBool("write-back", false);
  cfg.exact_ranks = std::max<size_t>(cfg.cache_size, 262'144);
  std::string metrics_out = args.GetString("metrics-out", "");
  double check_interval_s = 0;
  bool check_invariants = ParseCheckInvariants(args, &check_interval_s);
  if (!args.ok()) {
    return 2;
  }
  if (check_invariants && check_interval_s < 0) {
    return 2;
  }
  SaturationResult r = SolveSaturation(cfg);
  int rc = 0;
  if (check_invariants) {
    // Closed-form model sanity: no simulated time here, so validate the
    // solver's outputs against the model's own conservation laws.
    uint64_t violations = 0;
    auto violation = [&violations](const char* msg) {
      std::fprintf(stderr, "[invariant:model_sanity] %s\n", msg);
      ++violations;
    };
    if (!(r.cache_hit_fraction >= 0.0 && r.cache_hit_fraction <= 1.0)) {
      violation("cache_hit_fraction outside [0, 1]");
    }
    if (!std::isfinite(r.total_qps) || r.total_qps < 0 ||
        !std::isfinite(r.cache_qps) || r.cache_qps < 0 ||
        !std::isfinite(r.server_qps) || r.server_qps < 0) {
      violation("non-finite or negative throughput component");
    }
    double tol = 1e-6 * std::max(r.total_qps, 1.0);
    if (std::abs(r.total_qps - (r.cache_qps + r.server_qps)) > tol) {
      violation("total_qps != cache_qps + server_qps (query conservation)");
    }
    double per_server_sum = 0;
    for (double qps : r.per_server_qps) {
      per_server_sum += qps;
      if (!std::isfinite(qps) || qps < 0) {
        violation("per-server load non-finite or negative");
      }
      if (qps > cfg.server_rate_qps * (1.0 + 1e-6)) {
        violation("per-server load exceeds server capacity at the solution");
      }
    }
    if (r.per_server_qps.size() != cfg.num_partitions) {
      violation("per_server_qps size != num_partitions");
    }
    if (r.bottleneck_server >= cfg.num_partitions) {
      violation("bottleneck_server out of range");
    }
    std::printf("invariants      %d checks, %llu violations\n", 7,
                static_cast<unsigned long long>(violations));
    if (violations > 0) {
      rc = 1;
    }
  }
  std::printf("total       %.3e q/s\n", r.total_qps);
  std::printf("cache       %.3e q/s (hit fraction %.3f)\n", r.cache_qps,
              r.cache_hit_fraction);
  std::printf("servers     %.3e q/s\n", r.server_qps);
  std::printf("limited by  %s (bottleneck server %zu)\n", r.limited_by.c_str(),
              r.bottleneck_server);
  if (!metrics_out.empty()) {
    bool ok = WriteJsonFile(metrics_out, [&](JsonWriter& w) {
      w.BeginObject();
      w.Field("command", "saturate");
      w.Field("total_qps", r.total_qps);
      w.Field("cache_qps", r.cache_qps);
      w.Field("server_qps", r.server_qps);
      w.Field("cache_hit_fraction", r.cache_hit_fraction);
      w.Field("bottleneck_server", static_cast<uint64_t>(r.bottleneck_server));
      w.Field("limited_by", r.limited_by);
      w.Name("per_server_qps");
      w.BeginArray();
      for (double qps : r.per_server_qps) {
        w.Double(qps);
      }
      w.EndArray();
      w.EndObject();
    });
    if (!ok) {
      return 1;
    }
  }
  return rc;
}

int RunMultiRack(ArgParser& args) {
  MultiRackConfig cfg;
  cfg.num_racks = static_cast<size_t>(args.GetInt("racks", 32));
  cfg.servers_per_rack = static_cast<size_t>(args.GetInt("servers-per-rack", 128));
  cfg.server_rate_qps = args.GetDouble("rate", 10e6);
  cfg.num_spines = static_cast<size_t>(args.GetInt("spines", cfg.num_racks / 2 + 1));
  cfg.cache_items_per_switch = static_cast<size_t>(args.GetInt("cache", 10'000));
  std::string mode = args.GetString("mode", "leafspine");
  if (mode == "nocache") {
    cfg.mode = MultiRackMode::kNoCache;
  } else if (mode == "leaf") {
    cfg.mode = MultiRackMode::kLeafCache;
  } else if (mode == "leafspine") {
    cfg.mode = MultiRackMode::kLeafSpineCache;
  } else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 2;
  }
  double check_interval_s = 0;
  bool check_invariants = ParseCheckInvariants(args, &check_interval_s);
  if (!args.ok()) {
    return 2;
  }
  if (check_invariants && check_interval_s < 0) {
    return 2;
  }
  MultiRackResult r = SolveMultiRack(cfg);
  int rc = 0;
  if (check_invariants) {
    uint64_t violations = 0;
    auto violation = [&violations](const char* msg) {
      std::fprintf(stderr, "[invariant:model_sanity] %s\n", msg);
      ++violations;
    };
    if (!std::isfinite(r.total_qps) || r.total_qps < 0 || !std::isfinite(r.spine_qps) ||
        r.spine_qps < 0 || !std::isfinite(r.tor_qps) || r.tor_qps < 0 ||
        !std::isfinite(r.server_qps) || r.server_qps < 0) {
      violation("non-finite or negative throughput component");
    }
    double tol = 1e-6 * std::max(r.total_qps, 1.0);
    if (std::abs(r.total_qps - (r.spine_qps + r.tor_qps + r.server_qps)) > tol) {
      violation("total_qps != spine + tor + server (query conservation)");
    }
    if (r.limited_by.empty()) {
      violation("limited_by not reported");
    }
    std::printf("invariants      %d checks, %llu violations\n", 3,
                static_cast<unsigned long long>(violations));
    if (violations > 0) {
      rc = 1;
    }
  }
  std::printf("%s, %zu racks x %zu servers:\n", MultiRackModeName(cfg.mode), cfg.num_racks,
              cfg.servers_per_rack);
  std::printf("total    %.3e q/s\n", r.total_qps);
  std::printf("spine    %.3e q/s\n", r.spine_qps);
  std::printf("tor      %.3e q/s\n", r.tor_qps);
  std::printf("servers  %.3e q/s\n", r.server_qps);
  std::printf("limited by %s\n", r.limited_by.c_str());
  std::string metrics_out = args.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    bool ok = WriteJsonFile(metrics_out, [&](JsonWriter& w) {
      w.BeginObject();
      w.Field("command", "multirack");
      w.Field("mode", MultiRackModeName(cfg.mode));
      w.Field("num_racks", static_cast<uint64_t>(cfg.num_racks));
      w.Field("servers_per_rack", static_cast<uint64_t>(cfg.servers_per_rack));
      w.Field("total_qps", r.total_qps);
      w.Field("spine_qps", r.spine_qps);
      w.Field("tor_qps", r.tor_qps);
      w.Field("server_qps", r.server_qps);
      w.Field("limited_by", r.limited_by);
      w.EndObject();
    });
    if (!ok) {
      return 1;
    }
  }
  return rc;
}

int RunSnake(ArgParser& args) {
  size_t ports = static_cast<size_t>(args.GetInt("ports", 64));
  uint64_t queries = static_cast<uint64_t>(args.GetInt("queries", 1000));
  size_t cache = static_cast<size_t>(args.GetInt("cache", 1024));
  size_t value_size = static_cast<size_t>(args.GetInt("value-size", 128));
  double check_interval_s = 0;
  bool check_invariants = ParseCheckInvariants(args, &check_interval_s);
  if (!args.ok()) {
    return 2;
  }
  if (check_invariants && check_interval_s < 0) {
    return 2;
  }
  SwitchConfig cfg;
  cfg.num_pipes = 1;
  cfg.cache_capacity = std::max<size_t>(cache, 1024);
  cfg.indexes_per_pipe = cfg.cache_capacity;
  cfg.stats.counter_slots = cfg.cache_capacity;
  SnakeHarness snake(cfg, ports);
  if (check_invariants) {
    // Shadow tracking must precede traffic so the soundness checker has
    // ground-truth counts for every sampled query.
    snake.tor().query_stats().EnableShadowTracking();
  }
  Status st = snake.CacheItems(cache, value_size);
  if (!st.ok()) {
    std::fprintf(stderr, "cache population failed: %s\n", st.ToString().c_str());
    return 1;
  }
  SnakeResult r = snake.Run(queries, 1 * kMicrosecond);
  int rc = 0;
  if (check_invariants) {
    // The snake has no servers or clients; the switch-local invariants
    // (slot-allocator consistency, sketch soundness) are the meaningful ones.
    CheckerRunner runner;
    runner.AddChecker(std::make_unique<SlotConsistencyChecker>(&snake.tor()));
    runner.AddChecker(std::make_unique<SketchSoundnessChecker>(&snake.tor().query_stats()));
    runner.RunOnce();
    rc = ReportInvariantResults(runner);
  }
  std::printf("ports           %zu (%zu pipeline passes per query)\n", ports, r.passes);
  std::printf("injected        %llu\n", static_cast<unsigned long long>(r.sent));
  std::printf("pipeline reads  %llu (x%.0f amplification)\n",
              static_cast<unsigned long long>(r.pipeline_reads), r.amplification);
  std::printf("delivered       %llu (%llu value-exact)\n",
              static_cast<unsigned long long>(r.received),
              static_cast<unsigned long long>(r.value_ok));
  std::string metrics_out = args.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    MetricsRegistry registry;
    snake.tor().RegisterMetrics(registry, "switch", {{"component", "switch"}});
    bool ok = WriteJsonFile(metrics_out, [&](JsonWriter& w) {
      w.BeginObject();
      w.Field("command", "snake");
      w.Field("ports", static_cast<uint64_t>(ports));
      w.Field("passes", static_cast<uint64_t>(r.passes));
      w.Field("sent", r.sent);
      w.Field("received", r.received);
      w.Field("value_ok", r.value_ok);
      w.Field("pipeline_reads", r.pipeline_reads);
      w.Field("amplification", r.amplification);
      w.Name("metrics");
      w.BeginObject();
      registry.WriteJson(w);
      w.EndObject();
      w.EndObject();
    });
    if (!ok) {
      return 1;
    }
  }
  return rc;
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.positional().empty()) {
    return Usage(argv[0]);
  }
  const std::string& command = args.positional()[0];
  if (args.GetBool("no-simd", false)) {
    ForceScalarSimd();
  }
  if (args.GetBool("lp-checks", false)) {
#if NETCACHE_LP_CHECKS
    lp::SetChecksEnabled(true);
#else
    std::fprintf(stderr,
                 "--lp-checks ignored: built with -DNETCACHE_LP_CHECKS=OFF\n");
#endif
  }
  int rc;
  if (command == "rack") {
    rc = RunRack(args);
  } else if (command == "sweep") {
    rc = RunSweep(args);
  } else if (command == "saturate") {
    rc = RunSaturate(args);
  } else if (command == "multirack") {
    rc = RunMultiRack(args);
  } else if (command == "snake") {
    rc = RunSnake(args);
  } else {
    return Usage(argv[0]);
  }
  for (const std::string& err : args.errors()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
  }
  return args.ok() ? rc : 2;
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) { return netcache::Main(argc, argv); }
