#!/usr/bin/env python3
"""Aggregate a netcache profile (--profile-out JSON) into a stall-attribution report.

The profile is Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
with an extra top-level "netcache" object carrying exact per-lane and per-LP
aggregates maintained by the profiler itself.  This tool reads only that
summary block, so the report is exact even when the per-lane span buffers
overflowed (spans_dropped > 0 merely truncates the *timeline*, never the
aggregates).

Default mode prints:
  * per-lane wall-clock attribution: what fraction of each recording thread's
    active extent went to round execution, barrier waits, inbound-mail merge,
    serial fences, and round-boundary coordination (the five buckets that
    partition a DES worker's life);
  * the switch-pipeline breakdown (digest / match+peek / value-serve), which
    nests *inside* lp_execute spans and is therefore reported as a
    within-execute breakdown, never added to the lane buckets;
  * per-LP busy table (exec ms, windows, events/window, stalled windows);
  * the events-per-window histogram (bin 0 = stalled window, bin k covers
    [2^(k-1), 2^k - 1] events).

Modes:
  --validate         structural validation only (for CI): checks the trace is
                     well-formed and self-consistent, exit 0/1.
  --min-attributed=F fail (exit 1) unless the DES-active lanes' attributed
                     fraction (execute+barrier+merge+fence+coordinate over
                     lane extents) is at least F (e.g. 0.9).
  --scaling-baseline=BASE.json
                     also print a scaling-efficiency line: this profile's
                     events/s against the (typically 1-worker) baseline
                     profile's, and the per-worker parallel efficiency.

Usage:
  tools/profile_report.py PROFILE.json
  tools/profile_report.py --validate PROFILE.json
  tools/profile_report.py --min-attributed=0.9 PROFILE.json
  tools/profile_report.py --scaling-baseline=prof_1worker.json prof_8worker.json
"""

import argparse
import json
import signal
import sys

# Die quietly when piped into `head` and friends.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

# Must match ProfCat / ProfCatName in src/common/profiler.h.
DES_CATS = ("lp_execute", "barrier_wait", "merge", "serial_fence", "coordinate")
SWITCH_CATS = ("switch_digest", "switch_match_peek", "switch_value_serve")
# Server service stages and link egress-flush; nested inside lp_execute like
# the switch stages (service completions and transmit-group flushes dispatch
# from LP events), so they are a breakdown of execute, never an extra bucket.
SERVER_CATS = ("server_lookup", "server_reply", "egress_flush")
ALL_CATS = DES_CATS + SWITCH_CATS + SERVER_CATS


def fail(msg: str) -> "NoReturn":
    print(f"profile_report: error: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read '{path}': {e}")
    except json.JSONDecodeError as e:
        fail(f"'{path}' is not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail(f"'{path}': top level is not an object")
    return doc


def validate(doc: dict) -> list:
    """Returns a list of problem strings (empty = structurally sound)."""
    problems = []

    def check(cond, msg):
        if not cond:
            problems.append(msg)
        return cond

    check(doc.get("displayTimeUnit") == "ms", "displayTimeUnit != 'ms'")
    events = doc.get("traceEvents")
    if check(isinstance(events, list), "traceEvents missing or not a list"):
        n_spans = 0
        for i, ev in enumerate(events):
            if not isinstance(ev, dict) or "ph" not in ev:
                problems.append(f"traceEvents[{i}]: not an event object")
                break
            ph = ev["ph"]
            if ph == "M":
                continue
            if ph != "X":
                problems.append(f"traceEvents[{i}]: unexpected phase '{ph}'")
                break
            n_spans += 1
            if not (isinstance(ev.get("ts"), (int, float)) and ev["ts"] >= 0 and
                    isinstance(ev.get("dur"), (int, float)) and ev["dur"] >= 0 and
                    isinstance(ev.get("tid"), int) and ev.get("name") in ALL_CATS):
                problems.append(f"traceEvents[{i}]: malformed X event: {ev}")
                break

    nc = doc.get("netcache")
    if not check(isinstance(nc, dict), "netcache summary block missing"):
        return problems
    check(nc.get("version") == 1, f"unsupported summary version {nc.get('version')!r}")
    lanes = nc.get("lanes")
    if not check(isinstance(lanes, list) and lanes, "netcache.lanes missing or empty"):
        return problems

    total_spans = 0
    for lane in lanes:
        lid = lane.get("lane")
        total_spans += lane.get("spans", 0)
        cats = lane.get("cats")
        if not check(isinstance(cats, dict), f"lane {lid}: cats missing"):
            continue
        for cat in ALL_CATS:
            c = cats.get(cat)
            if not check(isinstance(c, dict), f"lane {lid}: cat '{cat}' missing"):
                continue
            check(c.get("ns", -1) >= 0 and c.get("count", -1) >= 0,
                  f"lane {lid}: cat '{cat}' has negative aggregates")
            if c.get("count", 0) > 0 and not c.get("ns", 0) >= 0:
                problems.append(f"lane {lid}: cat '{cat}' counted but ns invalid")
        if lane.get("spans", 0) > 0:
            check(lane.get("last_ns", 0) >= lane.get("first_ns", 0),
                  f"lane {lid}: last_ns < first_ns")
            cat_ns = sum(cats.get(c, {}).get("ns", 0) for c in DES_CATS)
            extent = lane.get("last_ns", 0) - lane.get("first_ns", 0)
            # Switch spans nest inside lp_execute, so DES cats alone must fit
            # the extent (tiny slack for the final span's own duration).
            check(cat_ns <= extent + cat_ns * 0.01 + 1_000_000,
                  f"lane {lid}: bucket ns {cat_ns} exceeds extent {extent}")
        bins = lane.get("window_events_bins")
        check(isinstance(bins, list) and all(isinstance(b, int) and b >= 0 for b in bins),
              f"lane {lid}: window_events_bins malformed")

    # Every span in the timeline must be accounted for by the lane summaries.
    if isinstance(events, list):
        n_x = sum(1 for ev in events if isinstance(ev, dict) and ev.get("ph") == "X")
        check(n_x == total_spans,
              f"timeline has {n_x} spans but lane summaries claim {total_spans}")

    for lp in nc.get("lps", []):
        check(isinstance(lp, dict) and lp.get("exec_ns", -1) >= 0 and
              lp.get("windows", -1) >= 0 and lp.get("events", -1) >= 0 and
              lp.get("stall_windows", -1) >= 0,
              f"lps entry malformed: {lp}")
    return problems


def ms(ns: float) -> float:
    return ns / 1e6


def pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole > 0 else "    -"


def bin_label(k: int) -> str:
    if k == 0:
        return "0 (stall)"
    lo, hi = 1 << (k - 1), (1 << k) - 1
    return str(lo) if lo == hi else f"{lo}-{hi}"


def des_throughput(doc: dict):
    """(events, extent_ns, des_lanes) for a profile's DES work.

    Events counts everything dispatched by the scheduler: per-LP round
    execution (lp_execute arg) plus global-stream serial instants
    (serial_fence arg).  Extent is the union of the DES lanes' activity.
    """
    lanes = doc["netcache"]["lanes"]
    des = [l for l in lanes if any(l["cats"][c]["count"] > 0 for c in DES_CATS)]
    if not des:
        return 0, 0, 0
    events = sum(l["cats"]["lp_execute"]["arg"] + l["cats"]["serial_fence"]["arg"]
                 for l in des)
    extent = max(l["last_ns"] for l in des) - min(l["first_ns"] for l in des)
    return events, extent, len(des)


def scaling_report(doc: dict, baseline: dict) -> None:
    ev, ext, workers = des_throughput(doc)
    bev, bext, bworkers = des_throughput(baseline)
    if ext == 0 or bext == 0 or bworkers == 0:
        print("\nscaling: baseline or profile has no DES activity; skipping")
        return
    rate = ev / (ext / 1e9)
    brate = bev / (bext / 1e9)
    speedup = rate / brate if brate else 0.0
    # Per-worker efficiency: how much of the ideal linear speedup over the
    # baseline's worker count this run achieved.
    eff = speedup / (workers / bworkers) if workers else 0.0
    print(f"\nScaling vs baseline ({bworkers} lane(s), {brate:,.0f} events/s)")
    print(f"  this profile: {workers} lane(s), {rate:,.0f} events/s "
          f"({rate / workers:,.0f} per lane)")
    print(f"  speedup {speedup:.2f}x over baseline -> "
          f"{100.0 * eff:.1f}% per-worker scaling efficiency")


def report(doc: dict, min_attributed: float) -> int:
    nc = doc["netcache"]
    lanes = nc["lanes"]
    dropped = nc.get("spans_dropped", 0)
    if dropped:
        print(f"note: {dropped} timeline spans dropped (buffer full); "
              "aggregates below are still exact\n")

    # A lane participates in DES attribution when it recorded any of the five
    # scheduler buckets; a hypothetical switch-only thread would not.
    des_lanes = [l for l in lanes
                 if any(l["cats"][c]["count"] > 0 for c in DES_CATS)]

    print("Per-lane wall-clock attribution (extent = first span start .. last span end)")
    hdr = (f"  {'lane':<6} {'extent_ms':>10} {'execute':>8} {'barrier':>8} "
           f"{'merge':>8} {'fence':>8} {'coord':>8} {'other':>8} {'attributed':>11}")
    print(hdr)
    total_extent = 0
    total_attr = 0
    for lane in lanes:
        extent = lane["last_ns"] - lane["first_ns"]
        cats = lane["cats"]
        bucket_ns = {c: cats[c]["ns"] for c in DES_CATS}
        attr = sum(bucket_ns.values())
        other = max(0, extent - attr)
        in_des = lane in des_lanes
        if in_des:
            total_extent += extent
            total_attr += attr
        print(f"  {lane['lane']:<6} {ms(extent):>10.1f} "
              f"{pct(bucket_ns['lp_execute'], extent):>8} "
              f"{pct(bucket_ns['barrier_wait'], extent):>8} "
              f"{pct(bucket_ns['merge'], extent):>8} "
              f"{pct(bucket_ns['serial_fence'], extent):>8} "
              f"{pct(bucket_ns['coordinate'], extent):>8} "
              f"{pct(other, extent):>8} "
              f"{pct(attr, extent) if in_des else '  (no DES)':>11}")
    overall = total_attr / total_extent if total_extent else 0.0
    print(f"  overall: {100.0 * overall:.1f}% of DES-lane wall-clock attributed "
          f"to execute+barrier+merge+fence+coordinate ({len(des_lanes)} lane(s))")

    # Switch pipeline: nested inside lp_execute, reported as a breakdown of it.
    switch_total = sum(l["cats"][c]["ns"] for l in lanes for c in SWITCH_CATS)
    if switch_total > 0:
        exec_total = sum(l["cats"]["lp_execute"]["ns"] for l in lanes)
        print("\nSwitch pipeline (nested inside execute; not an extra bucket)")
        print(f"  {'stage':<20} {'ms':>9} {'spans':>10} {'packets':>12} {'ns/packet':>10}")
        for cat in SWITCH_CATS:
            ns_sum = sum(l["cats"][cat]["ns"] for l in lanes)
            count = sum(l["cats"][cat]["count"] for l in lanes)
            pkts = sum(l["cats"][cat]["arg"] for l in lanes)
            per_pkt = f"{ns_sum / pkts:>10.0f}" if pkts else f"{'-':>10}"
            print(f"  {cat:<20} {ms(ns_sum):>9.2f} {count:>10} {pkts:>12} {per_pkt}")
        print(f"  switch stages cover {pct(switch_total, exec_total).strip()} "
              "of execute time")

    # Server service + egress flush: same nesting as the switch stages.
    server_total = sum(l["cats"][c]["ns"] for l in lanes for c in SERVER_CATS)
    if server_total > 0:
        exec_total = sum(l["cats"]["lp_execute"]["ns"] for l in lanes)
        print("\nServer & egress stages (nested inside execute; not an extra bucket)")
        print(f"  {'stage':<20} {'ms':>9} {'spans':>10} {'packets':>12} {'ns/packet':>10}")
        for cat in SERVER_CATS:
            ns_sum = sum(l["cats"][cat]["ns"] for l in lanes)
            count = sum(l["cats"][cat]["count"] for l in lanes)
            pkts = sum(l["cats"][cat]["arg"] for l in lanes)
            per_pkt = f"{ns_sum / pkts:>10.0f}" if pkts else f"{'-':>10}"
            print(f"  {cat:<20} {ms(ns_sum):>9.2f} {count:>10} {pkts:>12} {per_pkt}")
        print(f"  server/egress stages cover {pct(server_total, exec_total).strip()} "
              "of execute time")

    lps = nc.get("lps", [])
    if lps:
        run_extent = max(l["last_ns"] for l in lanes) - min(l["first_ns"] for l in lanes)
        print("\nPer-LP execution (busy% is exec time over the whole run's extent)")
        print(f"  {'lp':<4} {'exec_ms':>9} {'windows':>9} {'events':>10} "
              f"{'ev/window':>10} {'stalls':>9} {'busy':>6}")
        for lp in lps:
            evw = lp["events"] / lp["windows"] if lp["windows"] else 0.0
            print(f"  {lp['lp']:<4} {ms(lp['exec_ns']):>9.1f} {lp['windows']:>9} "
                  f"{lp['events']:>10} {evw:>10.2f} {lp['stall_windows']:>9} "
                  f"{pct(lp['exec_ns'], run_extent):>6}")

    bins = [0] * max(len(l["window_events_bins"]) for l in lanes)
    for lane in lanes:
        for k, b in enumerate(lane["window_events_bins"]):
            bins[k] += b
    total_windows = sum(bins)
    if total_windows:
        print("\nEvents per LP-window (all lanes; stalled windows execute nothing)")
        width = 40
        peak = max(bins)
        for k, b in enumerate(bins):
            if b == 0 and not any(bins[k:]):
                break
            bar = "#" * max(1 if b else 0, round(width * b / peak))
            print(f"  {bin_label(k):>12} {b:>10} {pct(b, total_windows):>7}  {bar}")

    if min_attributed is not None and overall < min_attributed:
        print(f"\nprofile_report: FAIL: attributed fraction {overall:.3f} "
              f"< required {min_attributed:.3f}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Aggregate a netcache --profile-out trace into a "
                    "stall-attribution report.")
    ap.add_argument("profile", help="Chrome trace-event JSON from --profile-out")
    ap.add_argument("--validate", action="store_true",
                    help="structural validation only; exit 0/1 (for CI)")
    ap.add_argument("--min-attributed", type=float, default=None, metavar="F",
                    help="fail unless DES lanes' attributed fraction >= F")
    ap.add_argument("--scaling-baseline", default=None, metavar="BASE.json",
                    help="print events/s scaling efficiency vs this "
                         "(typically 1-worker) baseline profile")
    args = ap.parse_args()

    doc = load(args.profile)
    problems = validate(doc)
    if problems:
        for p in problems:
            print(f"profile_report: invalid: {p}", file=sys.stderr)
        return 1
    if args.validate:
        nc = doc["netcache"]
        n_spans = sum(l["spans"] for l in nc["lanes"])
        print(f"OK: {n_spans} spans in {len(nc['lanes'])} lane(s), "
              f"{len(nc.get('lps', []))} LPs, {nc.get('spans_dropped', 0)} dropped")
        return 0
    rc = report(doc, args.min_attributed)
    if args.scaling_baseline is not None:
        base = load(args.scaling_baseline)
        base_problems = validate(base)
        if base_problems:
            for p in base_problems:
                print(f"profile_report: invalid baseline: {p}", file=sys.stderr)
            return 1
        scaling_report(doc, base)
    return rc


if __name__ == "__main__":
    sys.exit(main())
