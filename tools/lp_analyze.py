#!/usr/bin/env python3
"""lp_analyze: static checker for the LP-ownership model of the parallel DES.

The conservative parallel simulator (src/net/simulator.h) is correct only
when every logical process (LP) touches nothing but its own state inside a
lookahead window. src/common/lp_ownership.h turns that discipline into
machine-readable classifications (NC_LP_OWNED / NC_LP_SHARED / NC_LP_FENCED);
this tool audits the classifications and the code against them. It is the
static sibling of the runtime sanitizer (--lp-checks): the sanitizer catches
what actually executed, this catches what could.

Rules:

  unclassified-field    Every mutable member of a Node subclass (and of any
                        class that already carries one NC_LP_* annotation)
                        must be classified OWNED / SHARED / FENCED. State a
                        DES event can touch with no declared owner is exactly
                        the state the sync-protocol rewrite will race on.
  foreign-owned-write   Code outside the owning class's own files must not
                        touch another object's NC_LP_OWNED state. Cross-LP
                        effects route through ScheduleFor / ScheduleGlobal /
                        the staged merge; the merge/fence machinery in
                        src/net/simulator.{h,cc} is the one allowlisted
                        exception.
  unfenced-global       Mutable namespace-scope state in the simulation
                        subsystems must be NC_LP_FENCED (mutated only in
                        serial fences) or NC_LP_SHARED (atomic / immutable /
                        mutex-protected). An unannotated global written from
                        an LP window is a cross-LP race by construction.
  raw-cross-schedule    Node-subsystem code (src/dataplane, src/server,
                        src/client) must not call the context-affine
                        Simulator::Schedule / ScheduleAt: a single serial
                        instant would capture the rescheduling chain into the
                        global stream forever, and a handler running in a
                        foreign context would schedule into the wrong heap.
                        Use ScheduleFor / ScheduleGlobal (/ ScheduleDeliveryAt).

Engines:

  --mode=lexical  Zero-dependency scan of the source tree (same philosophy
                  as netcache_lint.py). Runs everywhere, gates the ctest leg.
                  Lexical limits, by rule: unclassified-field keys on the
                  repo's `name_` member convention; unfenced-global keys on
                  the `g_`-prefix convention plus thread_local; the other two
                  are exact enough lexically (private members cannot be
                  foreign-accessed without the text saying so).
  --mode=ast      Consumes compile_commands.json and per-TU Clang JSON AST
                  dumps (`clang++ ... -fsyntax-only -Xclang -ast-dump=json`,
                  no libclang bindings). Sees through macros and naming
                  conventions; gates the CI static-analysis leg where clang
                  is installed. --ast-json FILE feeds a pre-dumped AST
                  (fixture self-tests; no clang needed).
  --mode=auto     ast when clang + compile_commands.json are available,
                  lexical otherwise.

Usage: python3 tools/lp_analyze.py [--root DIR] [--mode M] [--only RULE]
                                   [--list-rules] [--compile-commands FILE]
                                   [--ast-json FILE]
Prints findings as `path:line: [rule] message` and exits 1 if any.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

RULES = {
    "unclassified-field":
        "mutable Node-subclass / annotated-class member without an NC_LP_* "
        "classification",
    "foreign-owned-write":
        "access to another object's NC_LP_OWNED state outside the owning "
        "class's files (and outside the simulator merge/fence allowlist)",
    "unfenced-global":
        "mutable namespace-scope state in a simulation subsystem not marked "
        "NC_LP_FENCED / NC_LP_SHARED",
    "raw-cross-schedule":
        "context-affine Schedule/ScheduleAt call in node-subsystem code; use "
        "ScheduleFor / ScheduleGlobal",
}

CXX_EXTENSIONS = (".h", ".cc", ".cpp")

# Subsystems whose state the DES executes on (rule scopes).
SIM_SUBSYSTEMS = (
    "src/net/", "src/dataplane/", "src/server/", "src/client/",
    "src/controller/", "src/kvstore/", "src/core/",
)
# Node-handler subsystems where raw Schedule calls are wrong by construction.
NODE_SUBSYSTEMS = ("src/dataplane/", "src/server/", "src/client/")
# The sanctioned cross-LP machinery: staged merges, serial fences, worker
# TLS. It reaches into every LP's heap by design.
ALLOWLIST = ("src/net/simulator.h", "src/net/simulator.cc")

ANNOTATIONS = ("NC_LP_OWNED", "NC_LP_SHARED", "NC_LP_FENCED")
AST_ANNOTATIONS = ("netcache::lp_owned", "netcache::lp_shared",
                   "netcache::lp_fenced")

CLASS_DECL = re.compile(
    r"^\s*(?:class|struct)\s+(?:NC_\w+\s+)?"           # optional attr macro
    r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*"            # name (maybe qualified)
    r"(?:final\s*)?"
    r"(?::\s*([^\{]*))?"                               # base clause
    r"\{")
# A member declaration line, keyed on the repo's `name_` suffix convention:
# optional annotation/qualifiers, a type, then `foo_` with an optional array
# extent / initializer. Multi-declarator lines are rare enough to ignore.
FIELD_DECL = re.compile(
    r"^\s*(?:NC_LP_(?:OWNED|SHARED|FENCED)\s+)?"
    r"(?:mutable\s+|static\s+|constexpr\s+|inline\s+|thread_local\s+|const\s+)*"
    r"[A-Za-z_][\w:<>,\s\*&\(\)\.]*?[\s\*&>]"
    r"([A-Za-z_]\w*_)\s*(?:\[[^\]]*\]\s*)?"
    r"(?:=[^;]*|\{[^;]*\}|NC_GUARDED_BY\s*\([^)]*\))?;")
RAW_SCHEDULE = re.compile(r"\bSchedule(?:At)?\s*\(")
GLOBAL_VAR = re.compile(
    r"^\s*(?:NC_LP_(?:FENCED|SHARED)\s+)?"
    r"(?:static\s+|inline\s+|thread_local\s+)*"
    r"[A-Za-z_][\w:<>,\s\*&]*?[\s\*&>]"
    r"(g_\w+|tls_\w+)\s*(?:=[^;]*|\{[^;]*\})?;")


def strip_comments_and_strings(line, in_block_comment):
    """Removes string/char literals, // and /* */ comments from one line.

    Returns (stripped_line, still_in_block_comment). Multi-line block
    comments are tracked via the flag so class-body brace counting stays
    honest across them.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def relpath(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def iter_sources(root, tops=("src",)):
    for top in tops:
        top_dir = os.path.join(root, top)
        if not os.path.isdir(top_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(top_dir):
            # Self-test fixture trees plant violations on purpose.
            dirnames[:] = [d for d in dirnames if not d.endswith("_fixtures")]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    path = os.path.join(dirpath, name)
                    yield path, relpath(path, root)


def stem_of(rel):
    """src/net/link.h -> src/net/link (owner files share the stem)."""
    return rel.rsplit(".", 1)[0]


class ClassInfo:
    def __init__(self, name, rel, is_node):
        self.name = name
        self.rel = rel
        self.is_node = is_node
        self.annotated = False
        # (line, name, has_annotation, decl_text) of direct fields.
        self.fields = []


def parse_classes(path, rel):
    """Lexical pass 1: class extents, bases, direct field declarations.

    Brace-counting state machine over comment/string-stripped lines. Nested
    structs inside a tracked class are pushed as their own (untracked)
    scopes, so their members never count as direct fields of the outer class
    — a nested aggregate inherits the classification of the field that
    embeds it.
    """
    classes = []
    stack = []  # (ClassInfo-or-None, depth_at_entry)
    depth = 0
    in_block = False
    with open(path, encoding="utf-8", errors="replace") as f:
        for num, raw in enumerate(f, start=1):
            line, in_block = strip_comments_and_strings(raw.rstrip("\n"), in_block)
            m = CLASS_DECL.match(line)
            if m and not line.rstrip().endswith(";"):
                bases = m.group(2) or ""
                is_node = bool(re.search(r"\bNode\b", bases))
                info = ClassInfo(m.group(1), rel, is_node)
                classes.append(info)
                depth += line.count("{") - line.count("}")
                stack.append((info, depth))
                continue
            opens = line.count("{")
            closes = line.count("}")
            if stack and opens > 0 and re.match(
                    r"^\s*(?:class|struct|union|enum)\b", line):
                # Nested type: own scope, fields exempt.
                depth += opens - closes
                if opens > closes:
                    stack.append((None, depth))
                continue
            if stack and stack[-1][0] is not None and depth == stack[-1][1]:
                info = stack[-1][0]
                fm = FIELD_DECL.match(line)
                if fm and "(" not in line.split(fm.group(1))[0].split("<")[0]:
                    decl = line.strip()
                    has_annotation = any(a in line for a in ANNOTATIONS)
                    is_static = bool(re.match(r"\s*(?:static|constexpr)\b", line))
                    is_plain_const = (
                        re.match(r"\s*(?:NC_LP_\w+\s+)?const\b", line)
                        and "*" not in decl and "&" not in decl)
                    if not is_static and not is_plain_const:
                        info.fields.append((num, fm.group(1), has_annotation, decl))
                        if has_annotation:
                            info.annotated = True
            depth += opens - closes
            while stack and depth < stack[-1][1]:
                stack.pop()
    return classes


def lexical_engine(root, findings):
    classes = []
    sources = list(iter_sources(root))
    for path, rel in sources:
        classes.extend(parse_classes(path, rel))

    # Rule 1: unclassified fields.
    for info in classes:
        if not (info.is_node or info.annotated):
            continue
        for num, name, has_annotation, decl in info.fields:
            if not has_annotation:
                findings.append(
                    (info.rel, num, "unclassified-field",
                     "mutable member %r of %s has no NC_LP_OWNED / "
                     "NC_LP_SHARED / NC_LP_FENCED classification" %
                     (name, info.name)))

    # Rule 2: foreign access to owned state. Owned members are private, so
    # any textual `expr->member_` / `expr.member_` outside the owner's own
    # files is either a friend reaching in or code that will not compile —
    # both findings.
    owned = {}  # field name -> set of owner stems
    declared = {}  # field name -> set of stems declaring a field of that name
    for info in classes:
        for _, name, has_annotation, decl in info.fields:
            declared.setdefault(name, set()).add(stem_of(info.rel))
            if has_annotation and "NC_LP_OWNED" in decl:
                owned.setdefault(name, set()).add(stem_of(info.rel))
    if owned:
        member_access = re.compile(
            r"(\b[A-Za-z_]\w*|\)|\])\s*(?:->|\.)\s*(%s)\b(?!\s*\()" %
            "|".join(re.escape(f) for f in sorted(owned)))
        for path, rel in sources:
            if rel in ALLOWLIST:
                continue
            in_block = False
            with open(path, encoding="utf-8", errors="replace") as f:
                for num, raw in enumerate(f, start=1):
                    line, in_block = strip_comments_and_strings(
                        raw.rstrip("\n"), in_block)
                    for m in member_access.finditer(line):
                        obj, field = m.group(1), m.group(2)
                        if obj == "this":
                            continue
                        if stem_of(rel) in owned[field]:
                            continue  # the owner's own files
                        if stem_of(rel) in declared.get(field, ()):
                            # A class in this file's own header/source pair
                            # declares a member of the same name: the access
                            # resolves to that class, not the foreign owner
                            # (same-name disambiguation).
                            continue
                        findings.append(
                            (rel, num, "foreign-owned-write",
                             "access to NC_LP_OWNED member %r of a foreign "
                             "object (owned state may only be touched by its "
                             "own class or the simulator merge/fence code)" %
                             field))

    # Rules 3 + 4: per-line scans over the sim subsystems.
    for path, rel in sources:
        in_sim = any(rel.startswith(p) for p in SIM_SUBSYSTEMS)
        in_node_subsystem = any(rel.startswith(p) for p in NODE_SUBSYSTEMS)
        if not in_sim or rel in ALLOWLIST:
            continue
        # Scope stack distinguishing namespace braces from all others, so
        # rule 3 sees `namespace netcache { uint64_t g_x; }` as
        # namespace-scope but not function/class bodies.
        scopes = []
        in_block = False
        with open(path, encoding="utf-8", errors="replace") as f:
            for num, raw in enumerate(f, start=1):
                line, in_block = strip_comments_and_strings(
                    raw.rstrip("\n"), in_block)
                at_ns_scope = all(s == "ns" for s in scopes)
                if at_ns_scope:
                    gm = GLOBAL_VAR.match(line)
                    if (gm and not re.search(
                            r"NC_LP_(?:FENCED|SHARED)|\bconst\b|\bconstexpr\b"
                            r"|std::atomic", line)
                            and "::" not in line.split(gm.group(1))[0].split("<")[0]
                            .replace("std::", "")):
                        findings.append(
                            (rel, num, "unfenced-global",
                             "mutable namespace-scope state %r must be "
                             "NC_LP_FENCED (serial-fence writers only) or "
                             "NC_LP_SHARED (atomic/immutable)" % gm.group(1)))
                if in_node_subsystem and RAW_SCHEDULE.search(line):
                    findings.append(
                        (rel, num, "raw-cross-schedule",
                         "raw Schedule/ScheduleAt in node-subsystem code "
                         "schedules into the executing context, not the "
                         "node's LP; use ScheduleFor (node-affine) or "
                         "ScheduleGlobal (control plane)"))
                is_ns_open = bool(
                    re.match(r"\s*(?:inline\s+)?namespace\b", line))
                for _ in range(line.count("{")):
                    scopes.append("ns" if is_ns_open else "other")
                    is_ns_open = False  # only the first brace is the ns
                for _ in range(line.count("}")):
                    if scopes:
                        scopes.pop()


# ---------------------------------------------------------------------------
# AST engine: Clang JSON AST dumps (-Xclang -ast-dump=json), no libclang.
# ---------------------------------------------------------------------------


class AstWalk:
    """One pass over a TU's JSON AST.

    Clang emits file names differentially (a node's loc carries "file" only
    when it differs from the previous node's), so the walk threads a
    current-file cursor through the traversal.
    """

    def __init__(self, root):
        self.root = root
        self.cur_file = None
        # FieldDecl id -> (name, owner record name, owner rel, classification)
        self.fields_by_id = {}
        self.records = []  # (name, rel, is_node, annotated, fields)
        self.accesses = []  # (rel, line, field_id, enclosing_record)
        self.globals = []  # (rel, line, name, annotated, qual_type)
        self.schedule_calls = []  # (rel, line, callee)

    def norm(self, f):
        if not f:
            return None
        if not os.path.isabs(f):
            f = os.path.join(self.root, f)
        try:
            rel = os.path.relpath(f, self.root)
        except ValueError:
            return None
        rel = rel.replace(os.sep, "/")
        return None if rel.startswith("..") else rel

    def update_file(self, node):
        loc = node.get("loc") or {}
        for key in ("file", "spellingLoc", "expansionLoc"):
            v = loc.get(key)
            if isinstance(v, str):
                self.cur_file = v
            elif isinstance(v, dict) and v.get("file"):
                self.cur_file = v["file"]
        rng = node.get("range") or {}
        begin = rng.get("begin") or {}
        if isinstance(begin, dict):
            if begin.get("file"):
                self.cur_file = begin["file"]
            exp = begin.get("expansionLoc") or {}
            if isinstance(exp, dict) and exp.get("file"):
                self.cur_file = exp["file"]

    @staticmethod
    def line_of(node):
        loc = node.get("loc") or {}
        if isinstance(loc.get("line"), int):
            return loc["line"]
        for key in ("spellingLoc", "expansionLoc"):
            v = loc.get(key)
            if isinstance(v, dict) and isinstance(v.get("line"), int):
                return v["line"]
        rng = node.get("range") or {}
        begin = rng.get("begin") or {}
        if isinstance(begin, dict) and isinstance(begin.get("line"), int):
            return begin["line"]
        return 0

    @staticmethod
    def annotation_of(node):
        """The netcache::lp_* classification on a decl, if any."""
        for attr in node.get("inner") or []:
            if attr.get("kind") != "AnnotateAttr":
                continue
            # Newer clangs put the annotation text in inner StringLiterals;
            # older ones omit it. Treat a text-less AnnotateAttr as a
            # classification too (tolerant: the lexical engine still keys on
            # the exact macro).
            text = AstWalk.find_string(attr)
            if text is None or text.startswith("netcache::lp_"):
                return text or "netcache::lp_unknown"
        return None

    @staticmethod
    def find_string(node):
        if node.get("kind") == "StringLiteral":
            v = node.get("value")
            if isinstance(v, str):
                return v.strip('"')
        for child in node.get("inner") or []:
            found = AstWalk.find_string(child)
            if found is not None:
                return found
        return None

    @staticmethod
    def is_mutable_field(node):
        qt = ((node.get("type") or {}).get("qualType")) or ""
        if qt.startswith("const ") and "*" not in qt and "&" not in qt:
            return False
        return True

    def walk(self, node, enclosing_record=None):
        if not isinstance(node, dict):
            return
        self.update_file(node)
        kind = node.get("kind")
        rel = self.norm(self.cur_file)

        if kind == "CXXRecordDecl" and node.get("completeDefinition"):
            name = node.get("name") or "<anon>"
            bases = node.get("bases") or []
            is_node = any(
                re.search(r"\bNode\b",
                          ((b.get("type") or {}).get("qualType")) or "")
                for b in bases)
            fields = []
            annotated = False
            for child in node.get("inner") or []:
                if child.get("kind") != "FieldDecl":
                    continue
                self.update_file(child)
                classification = self.annotation_of(child)
                if classification:
                    annotated = True
                fid = child.get("id")
                fname = child.get("name") or "<anon>"
                frel = self.norm(self.cur_file)
                if fid:
                    self.fields_by_id[fid] = (fname, name, frel, classification)
                fields.append((self.line_of(child), fname, classification,
                               self.is_mutable_field(child), frel))
            if rel:
                self.records.append((name, rel, is_node, annotated, fields))
            for child in node.get("inner") or []:
                self.walk(child, enclosing_record=name)
            return

        if kind == "VarDecl" and enclosing_record is None and rel:
            qt = ((node.get("type") or {}).get("qualType")) or ""
            if node.get("name") and "const" not in qt.split("[")[0] \
                    and "atomic" not in qt:
                self.globals.append(
                    (rel, self.line_of(node), node["name"],
                     self.annotation_of(node) is not None, qt))

        if kind == "MemberExpr" and rel:
            ref = node.get("referencedMemberDecl")
            if ref and ref in self.fields_by_id:
                # Foreign unless the base expression is `this` (an implicit
                # or explicit CXXThisExpr child).
                base_is_this = any(
                    c.get("kind") == "CXXThisExpr"
                    for c in node.get("inner") or [])
                if not base_is_this:
                    self.accesses.append(
                        (rel, self.line_of(node), ref, enclosing_record))
            name = node.get("name")
            if name in ("Schedule", "ScheduleAt"):
                self.schedule_calls.append((rel, self.line_of(node), name))

        for child in node.get("inner") or []:
            self.walk(child, enclosing_record=enclosing_record)


def ast_engine_from_json(root, tu_json, findings, seen):
    walk = AstWalk(root)
    walk.walk(tu_json)

    for name, rel, is_node, annotated, fields in walk.records:
        if not any(rel.startswith(p) for p in SIM_SUBSYSTEMS):
            continue
        if not (is_node or annotated):
            continue
        for line, fname, classification, mutable_, frel in fields:
            if mutable_ and classification is None and frel:
                key = (frel, line, "unclassified-field", fname)
                if key not in seen:
                    seen.add(key)
                    findings.append(
                        (frel, line, "unclassified-field",
                         "mutable member %r of %s has no netcache::lp_* "
                         "classification" % (fname, name)))

    for rel, line, fid, enclosing in walk.accesses:
        fname, owner, frel, classification = walk.fields_by_id[fid]
        if classification != "netcache::lp_owned":
            continue
        if enclosing == owner or rel in ALLOWLIST:
            continue
        key = (rel, line, "foreign-owned-write", fname)
        if key not in seen:
            seen.add(key)
            findings.append(
                (rel, line, "foreign-owned-write",
                 "access to lp_owned member %s::%s from %s" %
                 (owner, fname, enclosing or "<free function>")))

    for rel, line, name, annotated, qt in walk.globals:
        if not any(rel.startswith(p) for p in SIM_SUBSYSTEMS):
            continue
        if rel in ALLOWLIST or annotated:
            continue
        key = (rel, line, "unfenced-global", name)
        if key not in seen:
            seen.add(key)
            findings.append(
                (rel, line, "unfenced-global",
                 "mutable namespace-scope state %r (%s) must carry a "
                 "netcache::lp_* classification" % (name, qt)))

    for rel, line, callee in walk.schedule_calls:
        if not any(rel.startswith(p) for p in NODE_SUBSYSTEMS):
            continue
        key = (rel, line, "raw-cross-schedule", callee)
        if key not in seen:
            seen.add(key)
            findings.append(
                (rel, line, "raw-cross-schedule",
                 "%s() in node-subsystem code; use ScheduleFor / "
                 "ScheduleGlobal" % callee))


def ast_engine(root, compile_commands, findings):
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    clang = shutil.which("clang++") or shutil.which("clang")
    if clang is None:
        print("lp_analyze: --mode=ast requires clang", file=sys.stderr)
        return False
    seen = set()
    tus = 0
    for entry in entries:
        src = entry.get("file") or ""
        rel = relpath(os.path.join(entry.get("directory", "."), src)
                      if not os.path.isabs(src) else src, root)
        if not any(rel.startswith(p) for p in SIM_SUBSYSTEMS):
            continue
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            # Shell-grade splitting is overkill: the exported commands are
            # cmake-generated and contain no quoted spaces.
            args = entry["command"].split()
        # Strip the output clauses and the original driver; re-drive clang.
        filtered = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            filtered.append(a)
        cmd = [clang] + filtered + ["-fsyntax-only", "-Wno-everything",
                                    "-Xclang", "-ast-dump=json"]
        proc = subprocess.run(cmd, cwd=entry.get("directory", root),
                              capture_output=True, text=True)
        if proc.returncode != 0 or not proc.stdout:
            print("lp_analyze: AST dump failed for %s:\n%s" %
                  (rel, proc.stderr[-2000:]), file=sys.stderr)
            return False
        ast_engine_from_json(root, json.loads(proc.stdout), findings, seen)
        tus += 1
    print("lp_analyze: %d TU(s) analyzed (ast)" % tus, file=sys.stderr)
    return True


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script's directory)")
    parser.add_argument("--mode", choices=("lexical", "ast", "auto"),
                        default="lexical")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for --mode=ast "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--ast-json", default=None,
                        help="pre-dumped Clang JSON AST file to analyze "
                             "instead of invoking clang (self-tests)")
    parser.add_argument("--only", metavar="RULE", action="append", default=None,
                        help="restrict output to RULE (repeatable)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-22s %s" % (rule, RULES[rule]))
        return 0
    if args.only:
        unknown = [r for r in args.only if r not in RULES]
        if unknown:
            print("lp_analyze: unknown rule(s): %s (see --list-rules)" %
                  ", ".join(unknown), file=sys.stderr)
            return 2

    root = os.path.abspath(args.root)
    findings = []

    if args.ast_json:
        with open(args.ast_json, encoding="utf-8") as f:
            ast_engine_from_json(root, json.load(f), findings, set())
    elif args.mode == "lexical":
        lexical_engine(root, findings)
    else:
        cc = args.compile_commands or os.path.join(
            root, "build", "compile_commands.json")
        have_ast = os.path.isfile(cc) and (
            shutil.which("clang++") or shutil.which("clang"))
        if args.mode == "ast":
            if not os.path.isfile(cc):
                print("lp_analyze: %s not found (configure with "
                      "CMAKE_EXPORT_COMPILE_COMMANDS=ON)" % cc, file=sys.stderr)
                return 2
            if not ast_engine(root, cc, findings):
                return 2
        elif have_ast:
            if not ast_engine(root, cc, findings):
                return 2
        else:
            lexical_engine(root, findings)

    if args.only:
        findings = [f for f in findings if f[2] in set(args.only)]
    findings.sort()
    for rel, num, rule, msg in findings:
        print("%s:%d: [%s] %s" % (rel, num, rule, msg))
    print("lp_analyze: %d finding(s)" % len(findings), file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
