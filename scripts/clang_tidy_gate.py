#!/usr/bin/env python3
"""clang-tidy gate: fail CI on findings not in the committed baseline.

Runs clang-tidy (checks from the repo's .clang-tidy) over every first-party
TU in a compile database and diffs the findings against
scripts/clang_tidy_baseline.txt. New findings fail the gate; baseline
entries that no longer fire are reported as prunable. This is what turns
clang-tidy from an advisory log into a ratchet: the backlog is frozen in the
baseline, and no new instance of a curated check (bugprone-*, concurrency-*,
performance-*, ...) can land.

Baseline entries are line-number-free — `path [check] message` — so pure
line churn (an unrelated edit above a finding) neither breaks the gate nor
invites a baseline refresh. Identical findings on different lines of the
same file collapse into one entry; that coarseness is the price of a stable
baseline and errs toward fewer gate failures, never spurious ones.

Usage:
  python3 scripts/clang_tidy_gate.py --build-dir build-clang
  python3 scripts/clang_tidy_gate.py --build-dir build --update-baseline

Requires clang-tidy and a compile_commands.json (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON, which the top-level CMakeLists sets).
Exits 0 when findings == baseline, 1 on new findings, 2 on setup errors.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

FINDING = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<msg>.*?) \[(?P<check>[\w.,-]+)\]\s*$")

# First-party code the gate covers; generated/third-party TUs are skipped.
TU_PREFIXES = ("src/", "tools/")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_entries(build_dir):
    cc = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(cc):
        sys.exit(f"clang_tidy_gate: {cc} not found (configure with "
                 "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    with open(cc, encoding="utf-8") as f:
        return json.load(f)


def norm(path, root):
    if not os.path.isabs(path):
        path = os.path.join(root, path)
    rel = os.path.relpath(os.path.realpath(path), root)
    return rel.replace(os.sep, "/")


def run_one(tidy, build_dir, src):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", src],
        capture_output=True, text=True)
    # clang-tidy exits non-zero on hard errors (missing headers, bad flags);
    # surface those separately from findings.
    return src, proc.returncode, proc.stdout, proc.stderr


def parse_findings(stdout, root):
    found = set()
    for line in stdout.splitlines():
        m = FINDING.match(line)
        if not m:
            continue
        rel = norm(m.group("path"), root)
        if not rel.startswith(TU_PREFIXES):
            continue  # headers outside first-party code
        # One baseline entry per (file, check, message); see module docstring.
        found.add("%s [%s] %s" % (rel, m.group("check"), m.group("msg")))
    return found


def read_baseline(path):
    entries = set()
    if not os.path.isfile(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="build tree with compile_commands.json")
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root(), "scripts",
                                         "clang_tidy_baseline.txt"))
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run's findings")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: from PATH)")
    args = ap.parse_args()

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if tidy is None:
        sys.exit("clang_tidy_gate: clang-tidy not on PATH")
    root = repo_root()
    build_dir = os.path.abspath(args.build_dir)

    sources = []
    for entry in load_entries(build_dir):
        src = entry.get("file") or ""
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", build_dir), src)
        if norm(src, root).startswith(TU_PREFIXES):
            sources.append(src)
    if not sources:
        sys.exit("clang_tidy_gate: no first-party TUs in compile database")

    findings = set()
    hard_errors = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(run_one, tidy, build_dir, s) for s in sources]
        for fut in concurrent.futures.as_completed(futures):
            src, rc, out, err = fut.result()
            tu_findings = parse_findings(out, root)
            findings |= tu_findings
            if rc != 0 and not tu_findings:
                hard_errors.append((norm(src, root), err.strip()[-2000:]))

    if hard_errors:
        for src, err in sorted(hard_errors):
            print(f"clang_tidy_gate: hard error on {src}:\n{err}",
                  file=sys.stderr)
        return 2

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            f.write("# clang-tidy suppression baseline — regenerate with\n"
                    "#   python3 scripts/clang_tidy_gate.py --build-dir "
                    "<dir> --update-baseline\n"
                    "# One `path [check] message` per line; the gate fails "
                    "on findings not listed here.\n")
            for entry in sorted(findings):
                f.write(entry + "\n")
        print(f"clang_tidy_gate: baseline updated with {len(findings)} "
              f"entr{'y' if len(findings) == 1 else 'ies'}")
        return 0

    baseline = read_baseline(args.baseline)
    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)
    if stale:
        print(f"note: {len(stale)} baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} no longer fire(s) — "
              "prune with --update-baseline:")
        for entry in stale:
            print(f"  STALE {entry}")
    if new:
        print(f"clang_tidy_gate: {len(new)} finding(s) not in baseline "
              f"({args.baseline}):")
        for entry in new:
            print(f"  FAIL {entry}")
        return 1
    print(f"clang_tidy_gate: OK — {len(findings)} finding(s), all baselined "
          f"({len(sources)} TU(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
