#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every figure
# and table of the paper, capturing outputs at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
