#!/usr/bin/env python3
"""Compare two bench-harness JSON files and fail on metric regressions.

Every bench under bench/ accepts --json=PATH and writes
    {"bench": ..., "seed": ..., "trials": [{"label", "config", "metrics",
     "wall_ms"?, "events"?, "events_per_sec"?}, ...]}
(see bench/bench_harness.h). This script diffs a candidate file against a
baseline, matching trials by label and metrics by name:

    python3 scripts/bench_regress.py BENCH_baseline.json new.json
    python3 scripts/bench_regress.py --tolerance 0.05 old.json new.json
    python3 scripts/bench_regress.py --perf --perf-tolerance 0.3 old.json new.json
    python3 scripts/bench_regress.py --scaling micro.json

With --scaling, a SINGLE document is inspected instead of diffing two: the
'ParallelDes/sim_threads=1' and 'ParallelDes/sim_threads=8' trials (written
by bench/micro_datastructures) must show the 8-worker run achieving at least
--scaling-factor times the 1-worker events_per_sec. This is a wall-clock
gate; run it only on a machine with >= 8 cores (CI skips it otherwise).

Model metrics (the "metrics" map) are deterministic for a fixed seed, so the
default tolerance is tight; any |new - old| > tolerance * max(|old|, eps)
is a regression. Wall-clock numbers (wall_ms, events_per_sec) vary with the
machine and are only compared when --perf is given, against the looser
--perf-tolerance, and only in the slower direction (faster is never flagged).

Both documents may carry a top-level "config" object recording the run setup
({"threads", "sim_threads", "sim_threads_effective", "serial", "simd_level",
"egress_batch"}, written by bench_harness). When both sides have one and they
disagree, the comparison is refused outright: wall-clock numbers are
meaningless across threading setups, --sim-threads>=1 runs a different
(windowed) event schedule than the legacy serial dispatcher, a "scalar"
simd_level run exercises a different codepath than an "avx2" one (batched
digests/sketch probes and grouped table scans are bypassed entirely), and an
egress_batch=0 run (--no-egress-batch) ships per-packet delivery records
where the default ships one coalesced record per transmit group — same
results by construction, but a different event-dispatch load, so even perf
deltas would be apples to oranges. Re-run the candidate with the baseline's
flags instead.

Exit status: 0 when everything matches, 1 on any regression, missing trial,
or missing metric. New trials/metrics present only in the candidate are
reported but do not fail (they are additions, not regressions).
"""

import argparse
import difflib
import json
import sys

EPS = 1e-12


def closest(name, pool, n=3):
    """Suggestion suffix listing the closest-matching names, if any.

    Renamed trials are the common cause of a missing-label failure (a bench
    tweak changes a config string baked into the label); pointing at the
    near-miss makes the fix obvious without opening both JSON files.
    """
    matches = difflib.get_close_matches(name, pool, n=n, cutoff=0.4)
    if not matches:
        return ""
    return " (closest in candidate: %s)" % ", ".join(repr(m) for m in matches)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_regress: cannot read {path}: {e}")
    if not isinstance(doc, dict) or "trials" not in doc:
        sys.exit(f"bench_regress: {path} is not a bench-harness JSON file")
    return doc


def trial_map(doc, path):
    trials = {}
    for t in doc["trials"]:
        label = t.get("label", "")
        if label in trials:
            sys.exit(f"bench_regress: duplicate trial label {label!r} in {path}")
        trials[label] = t
    return trials


def rel_delta(old, new):
    return (new - old) / max(abs(old), EPS)


def scaling_check(path, factor):
    """Single-document gate: 8-worker DES must out-run 1-worker by `factor`.

    Matches trials by their sim_threads config rather than hard-coding the
    label prefix count, so adding more worker-count trials to the bench never
    breaks the gate.
    """
    doc = load(path)
    rates = {}
    for t in doc["trials"]:
        if not t.get("label", "").startswith("ParallelDes/"):
            continue
        st = t.get("config", {}).get("sim_threads")
        eps = t.get("events_per_sec")
        if st is not None and eps:
            rates[int(st)] = eps
    if 1 not in rates or 8 not in rates:
        sys.exit(f"bench_regress: {path} lacks ParallelDes sim_threads=1/=8 "
                 f"trials with events_per_sec (found worker counts: "
                 f"{sorted(rates) or 'none'})")
    speedup = rates[8] / rates[1]
    if speedup < factor:
        print(f"bench_regress: FAIL — 8-worker DES speedup {speedup:.2f}x "
              f"over 1 worker (events/s {rates[1]:g} -> {rates[8]:g}), "
              f"required >= {factor:g}x")
        return 1
    print(f"bench_regress: OK — 8-worker DES speedup {speedup:.2f}x "
          f"(events/s {rates[1]:g} -> {rates[8]:g}, required >= {factor:g}x)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline JSON (e.g. BENCH_baseline.json); "
                    "with --scaling, the single document to inspect")
    ap.add_argument("candidate", nargs="?", default=None,
                    help="candidate JSON from a fresh run (omitted with "
                    "--scaling)")
    ap.add_argument(
        "--tolerance", type=float, default=0.01,
        help="relative tolerance for model metrics (default: %(default)s; "
        "deterministic benches should match far tighter than this)")
    ap.add_argument(
        "--perf", action="store_true",
        help="also compare wall_ms / events_per_sec (machine-dependent; "
        "off by default so CI on shared runners stays stable)")
    ap.add_argument(
        "--perf-tolerance", type=float, default=0.5,
        help="allowed relative slowdown for --perf comparisons "
        "(default: %(default)s)")
    ap.add_argument(
        "--scaling", action="store_true",
        help="single-document mode: require the 8-worker ParallelDes trial "
        "to reach --scaling-factor x the 1-worker events_per_sec")
    ap.add_argument(
        "--scaling-factor", type=float, default=2.0,
        help="minimum 8-worker/1-worker events_per_sec ratio for --scaling "
        "(default: %(default)s)")
    args = ap.parse_args()

    if args.scaling:
        if args.candidate is not None:
            ap.error("--scaling takes a single JSON document")
        return scaling_check(args.baseline, args.scaling_factor)
    if args.candidate is None:
        ap.error("candidate JSON is required (or pass --scaling)")

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    base_cfg = base_doc.get("config")
    cand_cfg = cand_doc.get("config")
    if base_cfg is not None and cand_cfg is not None and base_cfg != cand_cfg:
        sys.exit(
            "bench_regress: run configs differ — refusing to compare.\n"
            f"  baseline  {args.baseline}: {json.dumps(base_cfg, sort_keys=True)}\n"
            f"  candidate {args.candidate}: {json.dumps(cand_cfg, sort_keys=True)}\n"
            "  Re-run the candidate with the baseline's --threads/--sim-threads/"
            "--serial/--no-simd/--no-egress-batch flags (simd_level and "
            "egress_batch must match: scalar vs AVX2 and per-packet vs "
            "coalesced delivery are different codepaths).")
    if base_doc.get("bench") != cand_doc.get("bench"):
        print(f"note: comparing different benches: {base_doc.get('bench')!r} "
              f"vs {cand_doc.get('bench')!r}")
    base = trial_map(base_doc, args.baseline)
    cand = trial_map(cand_doc, args.candidate)

    failures = []
    compared = 0

    for label, bt in base.items():
        ct = cand.get(label)
        if ct is None:
            failures.append(f"trial {label!r}: missing from candidate"
                            + closest(label, cand))
            continue
        for name, old in bt.get("metrics", {}).items():
            if name not in ct.get("metrics", {}):
                failures.append(f"trial {label!r}: metric {name!r} missing "
                                "from candidate"
                                + closest(name, ct.get("metrics", {})))
                continue
            new = ct["metrics"][name]
            compared += 1
            delta = rel_delta(old, new)
            if abs(delta) > args.tolerance:
                failures.append(
                    f"trial {label!r}: {name} {old:g} -> {new:g} "
                    f"({delta:+.2%}, tolerance ±{args.tolerance:.2%})")
        if args.perf:
            # Slower wall_ms / lower events_per_sec is a regression;
            # the other direction is an improvement and never flagged.
            old_ms, new_ms = bt.get("wall_ms"), ct.get("wall_ms")
            if old_ms and new_ms:
                compared += 1
                delta = rel_delta(old_ms, new_ms)
                if delta > args.perf_tolerance:
                    failures.append(
                        f"trial {label!r}: wall_ms {old_ms:g} -> {new_ms:g} "
                        f"({delta:+.2%} slower, tolerance "
                        f"+{args.perf_tolerance:.2%})")
            old_eps, new_eps = bt.get("events_per_sec"), ct.get("events_per_sec")
            if old_eps and new_eps:
                compared += 1
                delta = rel_delta(old_eps, new_eps)
                if delta < -args.perf_tolerance:
                    failures.append(
                        f"trial {label!r}: events_per_sec {old_eps:g} -> "
                        f"{new_eps:g} ({delta:+.2%}, tolerance "
                        f"-{args.perf_tolerance:.2%})")

    additions = [label for label in cand if label not in base]
    if additions:
        print(f"note: {len(additions)} trial(s) only in candidate "
              f"(not compared): {', '.join(repr(a) for a in additions)}")

    if failures:
        print(f"bench_regress: {len(failures)} regression(s) against "
              f"{args.baseline}:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"bench_regress: OK — {compared} value(s) within tolerance "
          f"across {len(base)} trial(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
