// Ablation: consistent hashing + virtual nodes vs in-network caching (§8).
//
// Virtual nodes equalize *keyspace ownership* — useful when nodes differ in
// capacity or come and go — but a popular key still lives on one node, so
// zipfian query load stays imbalanced. We compute saturation throughput for
// a 128-server rack with ownership by a consistent-hash ring at increasing
// virtual-node counts, and contrast with NetCache.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"
#include "workload/consistent_hash.h"

namespace netcache {
namespace {

constexpr size_t kServers = 128;
constexpr double kServerRate = 10e6;
constexpr uint64_t kNumKeys = 100'000'000;
constexpr size_t kExact = 262'144;

struct ChOutcome {
  double total_qps;
  double ownership_spread;  // max/mean keyspace share
};

ChOutcome SolveWithRing(size_t vnodes) {
  ConsistentHashRing ring(kServers, vnodes);
  // Zipf pmf over the exact ranks; tail spread by ownership share.
  double h = 0.0;
  for (uint64_t k = 1; k <= 10'000; ++k) {
    h += std::pow(static_cast<double>(k), -0.99);
  }
  h += (std::pow(static_cast<double>(kNumKeys) + 0.5, 0.01) - std::pow(10'000.5, 0.01)) / 0.01;

  std::vector<double> load(kServers, 0.0);
  double exact_mass = 0.0;
  for (size_t r = 0; r < kExact; ++r) {
    double p = std::pow(static_cast<double>(r + 1), -0.99) / h;
    exact_mass += p;
    load[ring.NodeOf(Key::FromUint64(r))] += p;
  }
  std::vector<double> shares = ring.OwnershipShares();
  double tail = std::max(0.0, 1.0 - exact_mass);
  double max_load = 0.0;
  double max_share = 0.0;
  for (size_t n = 0; n < kServers; ++n) {
    max_load = std::max(max_load, load[n] + tail * shares[n]);
    max_share = std::max(max_share, shares[n]);
  }
  return ChOutcome{kServerRate / max_load, max_share * kServers};
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: consistent hashing + virtual nodes vs NetCache (§8; 128 "
      "servers x 10 MQPS, zipf-0.99, read-only)");
  std::printf("%-26s | %14s %20s\n", "scheme", "throughput", "keyspace max/mean");
  for (size_t vnodes : {1ul, 4ul, 16ul, 64ul, 256ul}) {
    ChOutcome o = SolveWithRing(vnodes);
    char name[40];
    std::snprintf(name, sizeof(name), "consistent hash, %zu vns", vnodes);
    std::printf("%-26s | %14s %19.2fx\n", name, bench::Qps(o.total_qps).c_str(),
                o.ownership_spread);
    harness.AddTrial("vnodes=" + std::to_string(vnodes))
        .Config("vnodes", static_cast<double>(vnodes))
        .Metric("qps", o.total_qps)
        .Metric("ownership_spread", o.ownership_spread);
  }

  SaturationConfig nc;
  nc.num_partitions = kServers;
  nc.server_rate_qps = kServerRate;
  nc.num_keys = kNumKeys;
  nc.zipf_alpha = 0.99;
  nc.cache_size = 10'000;
  nc.exact_ranks = kExact;
  double nc_qps = SolveSaturation(nc).total_qps;
  std::printf("%-26s | %14s %20s\n", "NetCache (10K cache)", bench::Qps(nc_qps).c_str(),
              "n/a");
  harness.AddTrial("netcache").Metric("qps", nc_qps);

  bench::PrintNote("");
  bench::PrintNote("Virtual nodes drive keyspace ownership toward 1.0x (their purpose) yet");
  bench::PrintNote("throughput barely moves: the bottleneck is the single owner of the");
  bench::PrintNote("hottest key, which no ownership shuffle can split — §8's observation");
  bench::PrintNote("that traditional balancing falls short against popularity skew.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_consistent_hash");
  netcache::Run(harness);
  return harness.Finish();
}
