// Shared helpers for the figure-reproduction benches: table printing and
// common configuration presets that mirror the paper's testbed (§7.1).

#ifndef NETCACHE_BENCH_BENCH_UTIL_H_
#define NETCACHE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace netcache {
namespace bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

// Formats a QPS figure the way the paper labels its axes (BQPS / MQPS).
inline std::string Qps(double qps) {
  char buf[64];
  if (qps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f BQPS", qps / 1e9);
  } else if (qps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MQPS", qps / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f KQPS", qps / 1e3);
  }
  return buf;
}

}  // namespace bench
}  // namespace netcache

#endif  // NETCACHE_BENCH_BENCH_UTIL_H_
