// Abstract / §7.3 claim: NetCache "reduces the latency of up to 40% of
// queries by 50%". At a load both systems can carry, every cache-hit read
// skips the storage server's service time, so the fraction of queries whose
// latency halves equals the cache hit fraction (<50% for a load-balancing
// cache). This bench measures the full latency distribution at a fixed
// moderate load and reports what fraction of queries got >= 2x faster.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "client/workload_driver.h"
#include "core/rack.h"
#include "core/sweep.h"

namespace netcache {
namespace {

struct LatencyRun {
  std::vector<uint64_t> latencies;
  uint64_t events = 0;
  double wall_ms = 0;
};

std::vector<uint64_t> CollectLatencies(bench::BenchHarness& harness, bool cache_enabled,
                                       double rate_qps, uint64_t* events_out) {
  RackConfig cfg;
  cfg.sim_threads = harness.sim_threads();
  cfg.num_servers = 16;
  cfg.num_clients = 1;
  cfg.cache_enabled = cache_enabled;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.server_template.service_rate_qps = 50e3;
  cfg.client_template.reply_timeout = 50 * kMillisecond;
  cfg.controller_config.cache_capacity = 64;
  Rack rack(cfg);
  harness.RecordEffectiveSimThreads(bench::EffectiveSimThreads(rack.sim()));
  constexpr uint64_t kNumKeys = 100'000;
  rack.Populate(kNumKeys, 128);

  WorkloadConfig wl;
  wl.num_keys = kNumKeys;
  wl.zipf_alpha = 0.99;
  wl.seed = 21;
  WorkloadGenerator gen(wl);
  if (cache_enabled) {
    std::vector<Key> hot;
    for (uint64_t id : gen.popularity().TopKeys(64)) {
      hot.push_back(Key::FromUint64(id));
    }
    rack.WarmCache(hot);
  }

  // Record per-query latencies through a callback (the histogram loses the
  // raw samples, and we want exact per-query fractions here).
  std::vector<uint64_t> latencies;
  DriverConfig dc;
  dc.rate_qps = rate_qps;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  driver.Start();
  rack.sim().RunUntil(100 * kMillisecond);  // warm-up
  rack.client(0).latency().Reset();
  // Sample the steady state via the client's histogram quantiles plus a raw
  // capture of 20K individual queries.
  Simulator& sim = rack.sim();
  for (int i = 0; i < 20000; ++i) {
    sim.Schedule(static_cast<SimDuration>(i) * static_cast<SimDuration>(1e9 / rate_qps),
                 [&rack, &gen, &latencies, &sim] {
                   Query q = gen.Next();
                   SimTime start = sim.Now();
                   rack.client(0).Get(rack.OwnerOf(q.key), q.key,
                                      [&latencies, start, &sim](const Status& s, const Value&) {
                                        if (s.ok()) {
                                          latencies.push_back(sim.Now() - start);
                                        }
                                      });
                 });
  }
  rack.sim().RunUntil(rack.sim().Now() + 500 * kMillisecond);
  driver.Stop();
  rack.sim().RunUntil(rack.sim().Now() + 50 * kMillisecond);
  *events_out = rack.sim().events_processed();
  return latencies;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Abstract claim: 'reduces the latency of up to 40% of queries by 50%' "
      "(16 servers x 50 KQPS, zipf-0.99 over 100K keys, 64 cached items,\n"
      "100 KQPS offered — uncongested, so only cache hits change)");
  const std::vector<bool> systems = {false, true};
  std::vector<LatencyRun> runs =
      RunSweep(systems, harness.sweep_options(),
               [&harness](bool cached, uint64_t /*seed*/, size_t /*index*/) {
        auto start = std::chrono::steady_clock::now();
        LatencyRun run;
        run.latencies = CollectLatencies(harness, cached, 100e3, &run.events);
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        run.wall_ms = elapsed.count();
        return run;
      });
  std::vector<uint64_t>& base = runs[0].latencies;
  std::vector<uint64_t>& nc = runs[1].latencies;
  std::sort(base.begin(), base.end());
  std::sort(nc.begin(), nc.end());

  auto quantile = [](const std::vector<uint64_t>& v, double q) {
    return v.empty() ? 0.0
                     : static_cast<double>(v[static_cast<size_t>(q * (v.size() - 1))]) / 1e3;
  };
  std::printf("%-10s | %9s %9s %9s %9s %9s\n", "system", "p10", "p25", "p50", "p90", "p99");
  std::printf("%-10s | %7.1fus %7.1fus %7.1fus %7.1fus %7.1fus\n", "NoCache",
              quantile(base, 0.10), quantile(base, 0.25), quantile(base, 0.50),
              quantile(base, 0.90), quantile(base, 0.99));
  std::printf("%-10s | %7.1fus %7.1fus %7.1fus %7.1fus %7.1fus\n", "NetCache",
              quantile(nc, 0.10), quantile(nc, 0.25), quantile(nc, 0.50), quantile(nc, 0.90),
              quantile(nc, 0.99));

  // Fraction of the distribution at least halved: compare quantile-wise.
  size_t n = std::min(base.size(), nc.size());
  size_t halved = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t bi = i * base.size() / n;
    size_t ni = i * nc.size() / n;
    if (static_cast<double>(nc[ni]) <= 0.5 * static_cast<double>(base[bi])) {
      ++halved;
    }
  }
  std::printf("\n  quantiles with latency reduced by >= 50%%: %.0f%% of queries\n",
              100.0 * static_cast<double>(halved) / static_cast<double>(n));
  for (size_t i = 0; i < runs.size(); ++i) {
    const std::vector<uint64_t>& v = i == 0 ? base : nc;
    bench::TrialRecord rec;
    rec.label = i == 0 ? "nocache" : "netcache";
    rec.Config("cache_enabled", static_cast<double>(i))
        .Metric("p50_us", quantile(v, 0.50))
        .Metric("p90_us", quantile(v, 0.90))
        .Metric("p99_us", quantile(v, 0.99));
    if (i == 1) {
      rec.Metric("halved_fraction",
                 static_cast<double>(halved) / static_cast<double>(n));
    }
    rec.wall_ms = runs[i].wall_ms;
    rec.events = runs[i].events;
    harness.AddTrialRecord(std::move(rec));
  }
  bench::PrintNote("");
  bench::PrintNote("Paper: up to 40% of queries see their latency halved — the cache-hit");
  bench::PrintNote("fraction of a load-balancing cache, which §1 bounds below 50%.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "tab_latency_cdf");
  netcache::Run(harness);
  return harness.Finish();
}
