// Figure 9: switch microbenchmark (snake test, §7.2).
//
// The paper measures the Tofino forwarding NetCache queries at 2.24 BQPS
// regardless of value size (Fig 9(a)) and cache size (Fig 9(b)) — line rate
// by construction, bottlenecked only by the generators (2 servers x 35 MQPS
// x 32-port snake amplification).
//
// We cannot measure an ASIC, so this bench establishes the two facts that
// matter for the reproduction:
//   1. The capacity-model derivation of the paper's 2.24 BQPS figure.
//   2. The software pipeline's per-packet cost is algorithmically O(1) in
//      value size and cache size (google-benchmark sweeps): one exact-match
//      lookup plus at most 8 fixed-size register accesses, independent of
//      how many items are cached. That constant-work property is what lets
//      the ASIC run the same design at line rate once the P4 program fits
//      the stage budget; on a CPU the only residual scaling is cache-
//      hierarchy pressure from the larger working set.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "bench/bench_harness.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/snake.h"
#include "dataplane/netcache_switch.h"
#include "workload/generator.h"

namespace netcache {
namespace {

constexpr IpAddress kClient = 0x0b000001;
constexpr IpAddress kServer = 0x0a000001;

NetCacheSwitch* MakeLoadedSwitch(size_t cache_items, size_t value_size) {
  // Memoized: google-benchmark re-enters each benchmark several times while
  // calibrating, and populating 64K entries per entry is the dominant cost.
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<NetCacheSwitch>> cache;
  auto key = std::make_pair(cache_items, value_size);
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second.get();
  }
  SwitchConfig cfg;
  cfg.num_pipes = 1;
  cfg.ports_per_pipe = 64;
  cfg.cache_capacity = 64 * 1024;
  cfg.indexes_per_pipe = 64 * 1024;
  cfg.stats.counter_slots = 64 * 1024;
  auto sw = std::make_unique<NetCacheSwitch>(nullptr, "bench", cfg);
  NC_CHECK(sw->AddRoute(kServer, 0).ok());
  NC_CHECK(sw->AddRoute(kClient, 32).ok());
  for (uint64_t id = 0; id < cache_items; ++id) {
    NC_CHECK(sw->InsertCacheEntry(Key::FromUint64(id),
                                  WorkloadGenerator::ValueFor(id, value_size), kServer)
                 .ok());
  }
  NetCacheSwitch* raw = sw.get();
  cache.emplace(key, std::move(sw));
  return raw;
}

// Fig 9(a): read + update throughput vs value size, 64K cached items.
void BM_SwitchReadHit_ValueSize(benchmark::State& state) {
  size_t value_size = static_cast<size_t>(state.range(0));
  auto sw = MakeLoadedSwitch(64 * 1024, value_size);
  Rng rng(1);
  uint64_t seq = 0;
  for (auto _ : state) {
    Key key = Key::FromUint64(rng.NextBounded(64 * 1024));
    auto emits = sw->ProcessPacket(MakeGet(kClient, kServer, key, static_cast<uint32_t>(seq++)),
                                   32);
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchReadHit_ValueSize)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

void BM_SwitchUpdate_ValueSize(benchmark::State& state) {
  size_t value_size = static_cast<size_t>(state.range(0));
  auto sw = MakeLoadedSwitch(64 * 1024, value_size);
  Rng rng(2);
  Packet update;
  update.ip.src = kServer;
  update.ip.dst = sw->config().switch_ip;
  update.l4.dst_port = kNetCachePort;
  update.nc.op = OpCode::kCacheUpdate;
  update.nc.has_value = true;
  for (auto _ : state) {
    uint64_t id = rng.NextBounded(64 * 1024);
    update.nc.key = Key::FromUint64(id);
    update.nc.value = WorkloadGenerator::ValueFor(id, value_size);
    auto emits = sw->ProcessPacket(update, 0);
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchUpdate_ValueSize)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

// Fig 9(b): read throughput vs cache size, 128-byte values.
void BM_SwitchReadHit_CacheSize(benchmark::State& state) {
  size_t cache_items = static_cast<size_t>(state.range(0));
  auto sw = MakeLoadedSwitch(cache_items, 128);
  Rng rng(3);
  uint64_t seq = 0;
  for (auto _ : state) {
    Key key = Key::FromUint64(rng.NextBounded(cache_items));
    auto emits = sw->ProcessPacket(MakeGet(kClient, kServer, key, static_cast<uint32_t>(seq++)),
                                   32);
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchReadHit_CacheSize)
    ->Arg(1024)
    ->Arg(8 * 1024)
    ->Arg(16 * 1024)
    ->Arg(32 * 1024)
    ->Arg(64 * 1024);

// --- Burst pipeline (VPP-style stage-at-a-time processing) ---
//
// Same workload as the per-packet benches above, delivered as 32-packet
// bursts through ProcessBurst: the digest is computed once per packet and
// every downstream structure is prefetched one stage ahead. The ratio to
// BM_SwitchReadHit_ValueSize is the batching + one-hash speedup.

constexpr size_t kBurst = 32;
constexpr size_t kBurstSets = 64;

// Counts emits; burst-owned packets live in the bench arena, so nothing is
// freed here (from_burst only transfers ownership out of the arrival slot).
class CountingSink : public NetCacheSwitch::EmitSink {
 public:
  void OnEmit(uint32_t, Packet*, bool) override { ++emits_; }
  uint64_t emits_ = 0;
};

// Pre-built burst prototypes + a reusable arena: ProcessBurst rewrites the
// arrival packets in place, so each pass copies prototypes into the arena
// first (a plain Packet copy, cheaper than the MakeGet the per-packet bench
// pays per iteration — the comparison stays conservative).
struct BurstSets {
  std::vector<std::vector<Packet>> protos;
  std::vector<Packet> arena;
  std::vector<BurstArrival> arrivals;

  BurstSets(uint64_t key_base, uint64_t key_span, uint64_t seed) {
    Rng rng(seed);
    protos.resize(kBurstSets);
    uint32_t seq = 0;
    for (auto& set : protos) {
      set.reserve(kBurst);
      for (size_t i = 0; i < kBurst; ++i) {
        Key key = Key::FromUint64(key_base + rng.NextBounded(key_span));
        set.push_back(MakeGet(kClient, kServer, key, seq++));
      }
    }
    arena.resize(kBurst);
    arrivals.resize(kBurst);
  }

  // Loads prototype set `n` into the arena and returns the arrival span.
  std::span<BurstArrival> Load(size_t n) {
    const std::vector<Packet>& set = protos[n % kBurstSets];
    for (size_t i = 0; i < kBurst; ++i) {
      arena[i] = set[i];  // digest left empty: the switch hashes at ingress
      arrivals[i] = BurstArrival{&arena[i], 32};
    }
    return {arrivals.data(), kBurst};
  }
};

void BM_SwitchBurstReadHit_ValueSize(benchmark::State& state) {
  size_t value_size = static_cast<size_t>(state.range(0));
  auto sw = MakeLoadedSwitch(64 * 1024, value_size);
  BurstSets bursts(0, 64 * 1024, 21);
  CountingSink sink;
  size_t n = 0;
  for (auto _ : state) {
    sw->ProcessBurst(bursts.Load(n++), sink);
  }
  benchmark::DoNotOptimize(sink.emits_);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBurst));
}
BENCHMARK(BM_SwitchBurstReadHit_ValueSize)->Arg(32)->Arg(64)->Arg(96)->Arg(128);

// Cache-resident twin of the 32 B burst hit: 1K cached items keep every
// register row in L2, so this is the instruction-cost floor of the burst
// pipeline; the gap to /32 above is pure memory-hierarchy pressure.
void BM_SwitchBurstReadHit_CacheResident(benchmark::State& state) {
  auto sw = MakeLoadedSwitch(1024, 32);
  BurstSets bursts(0, 1024, 23);
  CountingSink sink;
  size_t n = 0;
  for (auto _ : state) {
    sw->ProcessBurst(bursts.Load(n++), sink);
  }
  benchmark::DoNotOptimize(sink.emits_);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBurst));
}
BENCHMARK(BM_SwitchBurstReadHit_CacheResident);

void BM_SwitchBurstReadMiss(benchmark::State& state) {
  auto sw = MakeLoadedSwitch(1024, 128);
  BurstSets bursts(1'000'000, 1'000'000, 22);
  CountingSink sink;
  size_t n = 0;
  for (auto _ : state) {
    sw->ProcessBurst(bursts.Load(n++), sink);
  }
  benchmark::DoNotOptimize(sink.emits_);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBurst));
}
BENCHMARK(BM_SwitchBurstReadMiss);

// Miss path for contrast: HH detector + forward.
void BM_SwitchReadMiss(benchmark::State& state) {
  auto sw = MakeLoadedSwitch(1024, 128);
  Rng rng(4);
  for (auto _ : state) {
    Key key = Key::FromUint64(1'000'000 + rng.NextBounded(1'000'000));
    auto emits = sw->ProcessPacket(MakeGet(kClient, kServer, key, 1), 32);
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchReadMiss);

// --- Harness trials: burst read-hit throughput, gated by bench_regress.py ---
//
// One timed trial per value size drives the full SIMD burst fast path
// (batched ingress digests, grouped table probes, vectorized sketch updates
// on the ~0 misses) at the native dispatch level, plus one forced-scalar
// leg at 32 B for the before/after ratio. events_per_sec feeds the --perf
// one-sided gate: the committed BENCH_fig09_baseline.json was produced with
// the SIMD path live, so a change that loses the vectorization speedup
// regresses events_per_sec and fails CI on an AVX2 runner. cache_hits is the
// deterministic cross-check (identical streams must hit identically).

constexpr size_t kTrialBurstPasses = 2000;

void RunBurstHitTrial(bench::BenchHarness& harness, const std::string& label,
                      size_t value_size) {
  auto sw = MakeLoadedSwitch(64 * 1024, value_size);
  uint64_t hits_before = sw->counters().cache_hits;
  BurstSets bursts(0, 64 * 1024, 21);
  CountingSink sink;
  auto& trial = harness.AddTrial(label);
  trial.Config("value_size", static_cast<double>(value_size))
      .Config("burst", static_cast<double>(kBurst))
      .Config("passes", static_cast<double>(kTrialBurstPasses));
  {
    bench::TrialTimer timer(&trial);
    for (size_t n = 0; n < kTrialBurstPasses; ++n) {
      sw->ProcessBurst(bursts.Load(n), sink);
    }
    timer.SetEvents(kTrialBurstPasses * kBurst);
  }
  trial.Metric("cache_hits",
               static_cast<double>(sw->counters().cache_hits - hits_before));
}

void RunBurstHitTrials(bench::BenchHarness& harness) {
  for (size_t value_size : {32ul, 64ul, 96ul, 128ul}) {
    RunBurstHitTrial(harness, "BurstReadHit/value=" + std::to_string(value_size),
                     value_size);
  }
  // Forced-scalar twin of the 32 B point: the native/scalar events_per_sec
  // ratio IS the SIMD fast-path speedup (docs/PERFORMANCE.md quotes it).
  // Reusing the memoized switch is fine — the read-hit path never touches
  // the sketches, and the cache_hits metric is a per-leg delta.
  ScopedScalarSimd scalar;
  RunBurstHitTrial(harness, "BurstReadHit/value=32/scalar", 32);
}

void PrintLineRateDerivation() {
  std::printf("\n================================================================\n");
  std::printf("Figure 9 context: paper line-rate derivation (snake test, Tofino)\n");
  std::printf("================================================================\n");
  double per_server = 35e6;
  int servers = 2;
  int snake_amplification = 32;  // query replicated 31x by the 64-port snake
  double total = per_server * servers * snake_amplification;
  std::printf("  2 servers x 35 MQPS x 32 snake passes = %.2f BQPS (paper: 2.24 BQPS)\n",
              total / 1e9);
  std::printf("  Tofino chip maximum: > 4 BQPS; throughput is flat in value size\n");
  std::printf("  and cache size because the ASIC pipeline does constant work per\n");
  std::printf("  packet. The sweeps below show the software pipeline's per-packet\n");
  std::printf("  cost: algorithmically O(1) in both value size and cache size (one\n");
  std::printf("  exact-match lookup + <= 8 fixed-size register reads). Residual\n");
  std::printf("  slowdown at larger values/caches is CPU cache-hierarchy pressure,\n");
  std::printf("  which has no ASIC analogue (every stage access there is a\n");
  std::printf("  single-cycle dedicated SRAM read).\n\n");
}

void RunSnakeDemo(bench::BenchHarness& harness) {
  std::printf("Snake-test harness (64 ports, as in §7.1):\n");
  SwitchConfig cfg;
  cfg.num_pipes = 1;
  cfg.cache_capacity = 64 * 1024;
  cfg.indexes_per_pipe = 64 * 1024;
  SnakeHarness snake(cfg, 64);
  NC_CHECK(snake.CacheItems(1024, 128).ok());
  SnakeResult r = snake.Run(/*queries=*/2000, /*pacing=*/1 * kMicrosecond);
  harness.AddTrial("snake/64ports")
      .Config("queries", 2000)
      .Config("ports", 64)
      .Metric("pipeline_reads", static_cast<double>(r.pipeline_reads))
      .Metric("amplification", r.amplification)
      .Metric("received", static_cast<double>(r.received))
      .Metric("value_ok", static_cast<double>(r.value_ok));
  std::printf("  injected %llu queries -> %llu pipeline passes (x%.0f amplification),\n",
              static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.pipeline_reads), r.amplification);
  std::printf("  %llu replies delivered, %llu with byte-exact values.\n",
              static_cast<unsigned long long>(r.received),
              static_cast<unsigned long long>(r.value_ok));
  std::printf("  At the testbed's 70 MQPS offered load this amplification is what\n");
  std::printf("  yields the 2.24 BQPS processing rate of Fig 9.\n\n");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig09_switch_microbench");
  netcache::PrintLineRateDerivation();
  netcache::RunSnakeDemo(harness);
  netcache::RunBurstHitTrials(harness);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness.Finish();
}
