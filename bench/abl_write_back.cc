// Ablation: the §5 write-intensive extension — serving writes for cached
// keys in the switch (write-back) vs the paper's write-through design vs
// NoCache, across write ratios with skewed writes (the adversarial case of
// Fig 10(d)).
//
// Write-back restores the cache benefit for write-heavy skewed workloads —
// the gain §5 hypothesizes — at the fault-tolerance cost demonstrated in
// write_back_test.cc (dirty data lost on switch failure).

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

SaturationResult Solve(double w, size_t cache, bool write_back) {
  SaturationConfig cfg;
  cfg.num_partitions = 128;
  cfg.server_rate_qps = 10e6;
  cfg.num_keys = 100'000'000;
  cfg.zipf_alpha = 0.99;
  cfg.cache_size = cache;
  cfg.write_ratio = w;
  cfg.skewed_writes = true;
  cfg.write_back = write_back;
  cfg.exact_ranks = 262'144;
  return SolveSaturation(cfg);
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: in-switch write handling (§5) under skewed writes "
      "(zipf-0.99 reads AND writes, 128 servers, 10K cached items)");
  std::printf("%-6s | %14s %16s %16s\n", "w", "NoCache", "write-through", "write-back");
  for (double w : {0.0, 0.05, 0.1, 0.2, 0.5, 0.8, 1.0}) {
    SaturationResult none = Solve(w, 0, false);
    SaturationResult wt = Solve(w, 10'000, false);
    SaturationResult wb = Solve(w, 10'000, true);
    std::printf("%-6.2f | %14s %16s %16s\n", w, bench::Qps(none.total_qps).c_str(),
                bench::Qps(wt.total_qps).c_str(), bench::Qps(wb.total_qps).c_str());
    char label[32];
    std::snprintf(label, sizeof(label), "w=%.2f", w);
    harness.AddTrial(label)
        .Config("write_ratio", w)
        .Metric("nocache_qps", none.total_qps)
        .Metric("write_through_qps", wt.total_qps)
        .Metric("write_back_qps", wb.total_qps);
  }
  bench::PrintNote("");
  bench::PrintNote("Write-through (the paper's design) collapses to NoCache as skewed");
  bench::PrintNote("writes grow; write-back keeps multi-BQPS throughput at every ratio");
  bench::PrintNote("because hot-key writes never touch a server. The price: un-flushed");
  bench::PrintNote("writes are lost on switch failure (§5's reason for not doing this).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_write_back");
  netcache::Run(harness);
  return harness.Finish();
}
