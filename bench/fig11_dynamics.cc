// Figure 11: handling dynamic workloads (hot-in / random / hot-out), via
// packet-level simulation with the full control loop active: heavy-hitter
// detection in the switch, controller insertions/evictions rate-limited at
// the control plane, per-second statistics resets, and a client that adapts
// its send rate to observed loss — the §7.4 server-emulation methodology.
//
// Scaling: the paper emulates 128 partitions (each at 1/64 of a server's
// rate) with a 10K cache and 200-key churn. We run 8 partitions x 10 KQPS
// with a 300-item cache and proportional churn (hot-in 60 keys / 10 s,
// random 30 keys / s, hot-out 60 keys / s); relative throughput dips and
// recovery are the object of the experiment, not absolute rates (§7.1).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "client/workload_driver.h"
#include "core/rack.h"
#include "core/sweep.h"

namespace netcache {
namespace {

enum class Churn { kHotIn, kRandom, kHotOut };

constexpr uint64_t kNumKeys = 20'000;
constexpr size_t kCacheItems = 300;
constexpr SimDuration kRunTime = 30 * kSecond;

struct WorkloadResult {
  std::vector<double> bin_sums;
  std::vector<double> per10;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t reports_received = 0;
  uint64_t reports_ignored = 0;
  uint64_t events = 0;
};

WorkloadResult RunWorkload(bench::BenchHarness& harness, Churn churn) {
  RackConfig cfg;
  cfg.sim_threads = harness.sim_threads();
  cfg.num_servers = 8;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.switch_config.stats.hh.hot_threshold = 48;
  cfg.server_template.service_rate_qps = 10e3;
  cfg.server_template.queue_capacity = 64;
  cfg.client_template.reply_timeout = 5 * kMillisecond;
  cfg.controller_config.cache_capacity = kCacheItems;
  cfg.controller_config.control_op_latency = 100 * kMicrosecond;  // ~10K updates/s
  cfg.controller_config.stats_epoch = 1 * kSecond;                // §6
  Rack rack(cfg);
  harness.RecordEffectiveSimThreads(bench::EffectiveSimThreads(rack.sim()));
  rack.Populate(kNumKeys, 128);

  WorkloadConfig wl;
  wl.num_keys = kNumKeys;
  wl.zipf_alpha = 0.99;
  wl.seed = 11;
  WorkloadGenerator gen(wl);

  // Pre-populate the cache with the top-K hottest items (§7.4).
  std::vector<Key> hot;
  for (uint64_t id : gen.popularity().TopKeys(kCacheItems)) {
    hot.push_back(Key::FromUint64(id));
  }
  rack.WarmCache(hot);
  rack.StartController();

  DriverConfig dc;
  dc.rate_qps = 60e3;
  dc.adaptive = true;
  dc.adjust_interval = 100 * kMillisecond;
  dc.rate_step = 0.1;
  dc.min_rate_qps = 5e3;
  dc.bin_width = 1 * kSecond;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  driver.Start();

  // Schedule popularity churn.
  Rng churn_rng(123);
  SimDuration period = churn == Churn::kHotIn ? 10 * kSecond : 1 * kSecond;
  uint64_t amount = churn == Churn::kRandom ? 30 : 60;
  for (SimDuration t = period; t < kRunTime; t += period) {
    rack.sim().ScheduleAt(t, [&gen, &churn_rng, churn, amount] {
      switch (churn) {
        case Churn::kHotIn:
          gen.popularity().HotIn(amount);
          break;
        case Churn::kRandom:
          gen.popularity().RandomReplace(amount, kCacheItems, churn_rng);
          break;
        case Churn::kHotOut:
          gen.popularity().HotOut(amount);
          break;
      }
    });
  }

  rack.sim().RunUntil(kRunTime);
  driver.Stop();

  WorkloadResult res;
  size_t bins = driver.goodput().NumBins();
  res.bin_sums.reserve(bins);
  for (size_t i = 0; i < bins; ++i) {
    res.bin_sums.push_back(driver.goodput().BinSum(i));
  }
  res.per10 = driver.goodput().Aggregate(10);
  res.insertions = rack.controller().stats().insertions;
  res.evictions = rack.controller().stats().evictions;
  res.reports_received = rack.controller().stats().reports_received;
  res.reports_ignored = rack.controller().stats().reports_ignored;
  res.events = rack.sim().events_processed();
  return res;
}

void PrintWorkload(const char* name, const WorkloadResult& res) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%-6s %14s      %-6s %14s\n", "sec", "goodput", "sec", "goodput");
  for (size_t i = 0; i + 1 < res.bin_sums.size(); i += 2) {
    std::printf("%-6zu %14s      %-6zu %14s\n", i, bench::Qps(res.bin_sums[i]).c_str(),
                i + 1, bench::Qps(res.bin_sums[i + 1]).c_str());
  }
  std::printf("  per-10s avg:");
  for (double v : res.per10) {
    std::printf(" %s", bench::Qps(v / 10.0).c_str());
  }
  std::printf("\n  controller: insertions=%llu evictions=%llu reports=%llu ignored=%llu\n",
              static_cast<unsigned long long>(res.insertions),
              static_cast<unsigned long long>(res.evictions),
              static_cast<unsigned long long>(res.reports_received),
              static_cast<unsigned long long>(res.reports_ignored));
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Figure 11: dynamic workloads (8 partitions x 10 KQPS, 300-item cache, "
      "zipf-0.99, adaptive client)");

  struct Panel {
    const char* label;
    const char* name;
    Churn churn;
  };
  const std::vector<Panel> panels = {
      {"hot-in", "Fig 11(a) hot-in: 60 coldest keys -> top, every 10 s", Churn::kHotIn},
      {"random", "Fig 11(b) random: 30 of top-300 replaced by cold keys, every 1 s",
       Churn::kRandom},
      {"hot-out", "Fig 11(c) hot-out: 60 hottest keys -> bottom, every 1 s",
       Churn::kHotOut}};

  // The three panels are independent simulations: fan them out, print in order.
  struct Timed {
    WorkloadResult res;
    double wall_ms;
  };
  std::vector<Timed> results =
      RunSweep(panels, harness.sweep_options(),
               [&harness](const Panel& p, uint64_t /*seed*/, size_t /*index*/) {
        auto start = std::chrono::steady_clock::now();
        Timed t;
        t.res = RunWorkload(harness, p.churn);
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        t.wall_ms = elapsed.count();
        return t;
      });

  for (size_t i = 0; i < panels.size(); ++i) {
    PrintWorkload(panels[i].name, results[i].res);
    double total = 0;
    double min10 = results[i].res.per10.empty() ? 0 : results[i].res.per10[0] / 10.0;
    for (double v : results[i].res.per10) {
      total += v;
      min10 = std::min(min10, v / 10.0);
    }
    bench::TrialRecord rec;
    rec.label = panels[i].label;
    rec.Metric("avg_goodput_qps", total / 30.0)
        .Metric("min_10s_goodput_qps", min10)
        .Metric("insertions", static_cast<double>(results[i].res.insertions))
        .Metric("evictions", static_cast<double>(results[i].res.evictions));
    rec.wall_ms = results[i].wall_ms;
    rec.events = results[i].res.events;
    harness.AddTrialRecord(std::move(rec));
  }
  bench::PrintNote("");
  bench::PrintNote("Paper: hot-in dips sharply each change then recovers within ~1 s;");
  bench::PrintNote("random shows shallow dips; hot-out is essentially flat.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig11_dynamics");
  netcache::Run(harness);
  return harness.Finish();
}
