// Figure 11: handling dynamic workloads (hot-in / random / hot-out), via
// packet-level simulation with the full control loop active: heavy-hitter
// detection in the switch, controller insertions/evictions rate-limited at
// the control plane, per-second statistics resets, and a client that adapts
// its send rate to observed loss — the §7.4 server-emulation methodology.
//
// Scaling: the paper emulates 128 partitions (each at 1/64 of a server's
// rate) with a 10K cache and 200-key churn. We run 8 partitions x 10 KQPS
// with a 300-item cache and proportional churn (hot-in 60 keys / 10 s,
// random 30 keys / s, hot-out 60 keys / s); relative throughput dips and
// recovery are the object of the experiment, not absolute rates (§7.1).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "client/workload_driver.h"
#include "core/rack.h"

namespace netcache {
namespace {

enum class Churn { kHotIn, kRandom, kHotOut };

constexpr uint64_t kNumKeys = 20'000;
constexpr size_t kCacheItems = 300;
constexpr SimDuration kRunTime = 30 * kSecond;

void RunWorkload(const char* name, Churn churn) {
  RackConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.switch_config.stats.hh.hot_threshold = 48;
  cfg.server_template.service_rate_qps = 10e3;
  cfg.server_template.queue_capacity = 64;
  cfg.client_template.reply_timeout = 5 * kMillisecond;
  cfg.controller_config.cache_capacity = kCacheItems;
  cfg.controller_config.control_op_latency = 100 * kMicrosecond;  // ~10K updates/s
  cfg.controller_config.stats_epoch = 1 * kSecond;                // §6
  Rack rack(cfg);
  rack.Populate(kNumKeys, 128);

  WorkloadConfig wl;
  wl.num_keys = kNumKeys;
  wl.zipf_alpha = 0.99;
  wl.seed = 11;
  WorkloadGenerator gen(wl);

  // Pre-populate the cache with the top-K hottest items (§7.4).
  std::vector<Key> hot;
  for (uint64_t id : gen.popularity().TopKeys(kCacheItems)) {
    hot.push_back(Key::FromUint64(id));
  }
  rack.WarmCache(hot);
  rack.StartController();

  DriverConfig dc;
  dc.rate_qps = 60e3;
  dc.adaptive = true;
  dc.adjust_interval = 100 * kMillisecond;
  dc.rate_step = 0.1;
  dc.min_rate_qps = 5e3;
  dc.bin_width = 1 * kSecond;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  driver.Start();

  // Schedule popularity churn.
  Rng churn_rng(123);
  SimDuration period = churn == Churn::kHotIn ? 10 * kSecond : 1 * kSecond;
  uint64_t amount = churn == Churn::kRandom ? 30 : 60;
  for (SimDuration t = period; t < kRunTime; t += period) {
    rack.sim().ScheduleAt(t, [&gen, &churn_rng, churn, amount] {
      switch (churn) {
        case Churn::kHotIn:
          gen.popularity().HotIn(amount);
          break;
        case Churn::kRandom:
          gen.popularity().RandomReplace(amount, kCacheItems, churn_rng);
          break;
        case Churn::kHotOut:
          gen.popularity().HotOut(amount);
          break;
      }
    });
  }

  rack.sim().RunUntil(kRunTime);
  driver.Stop();

  std::printf("\n--- %s ---\n", name);
  std::printf("%-6s %14s      %-6s %14s\n", "sec", "goodput", "sec", "goodput");
  size_t bins = driver.goodput().NumBins();
  for (size_t i = 0; i + 1 < bins; i += 2) {
    std::printf("%-6zu %14s      %-6zu %14s\n", i,
                bench::Qps(driver.goodput().BinSum(i)).c_str(), i + 1,
                bench::Qps(driver.goodput().BinSum(i + 1)).c_str());
  }
  std::vector<double> per10 = driver.goodput().Aggregate(10);
  std::printf("  per-10s avg:");
  for (double v : per10) {
    std::printf(" %s", bench::Qps(v / 10.0).c_str());
  }
  std::printf("\n  controller: insertions=%llu evictions=%llu reports=%llu ignored=%llu\n",
              static_cast<unsigned long long>(rack.controller().stats().insertions),
              static_cast<unsigned long long>(rack.controller().stats().evictions),
              static_cast<unsigned long long>(rack.controller().stats().reports_received),
              static_cast<unsigned long long>(rack.controller().stats().reports_ignored));
}

void Run() {
  bench::PrintHeader(
      "Figure 11: dynamic workloads (8 partitions x 10 KQPS, 300-item cache, "
      "zipf-0.99, adaptive client)");
  RunWorkload("Fig 11(a) hot-in: 60 coldest keys -> top, every 10 s", Churn::kHotIn);
  RunWorkload("Fig 11(b) random: 30 of top-300 replaced by cold keys, every 1 s",
              Churn::kRandom);
  RunWorkload("Fig 11(c) hot-out: 60 hottest keys -> bottom, every 1 s", Churn::kHotOut);
  bench::PrintNote("");
  bench::PrintNote("Paper: hot-in dips sharply each change then recovers within ~1 s;");
  bench::PrintNote("random shows shallow dips; hot-out is essentially flat.");
}

}  // namespace
}  // namespace netcache

int main() {
  netcache::Run();
  return 0;
}
