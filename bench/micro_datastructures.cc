// Microbenchmarks of the core data structures (google-benchmark): the
// components whose per-packet cost determines the software pipeline rate.
//
// The *EventQueue* and *PacketAlloc* groups bound the simulator hot path:
// BM_EventQueue_StdFunction replays the heap discipline the simulator used
// before the zero-allocation rework (std::function events, swap-based sift)
// while BM_EventQueue_InlineFunction drives the real Simulator; their ratio
// is the events/sec speedup the rework bought. Run with
// --benchmark_min_time=0.2 on older google-benchmark builds.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "bench/bench_harness.h"
#include "client/workload_driver.h"
#include "common/hash.h"
#include "core/rack.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/zipf.h"
#include "dataplane/netcache_switch.h"
#include "dataplane/value_store.h"
#include "kvstore/flat_table.h"
#include "kvstore/hash_table.h"
#include "kvstore/kv_store.h"
#include "net/packet_pool.h"
#include "net/simulator.h"
#include "proto/key_digest.h"
#include "proto/packet.h"
#include "sketch/bloom.h"
#include "sketch/count_min.h"
#include "workload/generator.h"

namespace netcache {
namespace {

void BM_CountMinUpdate(benchmark::State& state) {
  CountMinSketch cms(4, 64 * 1024, 1);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cms.Update(Key::FromUint64(rng.NextBounded(1 << 20))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountMinUpdate);

void BM_BloomTestAndSet(benchmark::State& state) {
  BloomFilter bf(3, 256 * 1024, 2);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.TestAndSet(Key::FromUint64(rng.NextBounded(1 << 20))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomTestAndSet);

// --- SIMD batch kernels (common/simd.h dispatch) vs their scalar twins ---
//
// The burst pipeline feeds whole Get-runs through UpdateBatch /
// TestAndSetBatch / the grouped table probe; these benches measure the batch
// kernels in isolation at the native dispatch level and forced-scalar
// (ScopedScalarSimd), over the per-arg batch size. The harness trial groups
// below gate the same kernels in CI with bit-equivalence NC_CHECKs.

void BM_CountMinUpdateBatch(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  CountMinSketch cms(4, 64 * 1024, 1);
  Rng rng(1);
  std::vector<KeyDigest> digests(batch);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      digests[i] = KeyDigest::Of(Key::FromUint64(rng.NextBounded(1 << 20)));
    }
    cms.UpdateBatch(digests.data(), batch, nullptr);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_CountMinUpdateBatch)->Arg(8)->Arg(32)->Arg(64);

void BM_CountMinUpdateBatch_Scalar(benchmark::State& state) {
  ScopedScalarSimd scalar;
  size_t batch = static_cast<size_t>(state.range(0));
  CountMinSketch cms(4, 64 * 1024, 1);
  Rng rng(1);
  std::vector<KeyDigest> digests(batch);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      digests[i] = KeyDigest::Of(Key::FromUint64(rng.NextBounded(1 << 20)));
    }
    cms.UpdateBatch(digests.data(), batch, nullptr);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_CountMinUpdateBatch_Scalar)->Arg(32);

void BM_BloomTestAndSetBatch(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  BloomFilter bf(3, 256 * 1024, 2);
  Rng rng(2);
  std::vector<KeyDigest> digests(batch);
  bool already[64];  // max Arg below
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      digests[i] = KeyDigest::Of(Key::FromUint64(rng.NextBounded(1 << 20)));
    }
    bf.TestAndSetBatch(digests.data(), batch, already);
    benchmark::DoNotOptimize(already);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_BloomTestAndSetBatch)->Arg(8)->Arg(32)->Arg(64);

void BM_DigestBatch16(benchmark::State& state) {
  Rng rng(3);
  constexpr size_t kBatch = 64;
  std::vector<uint8_t> key_bytes(kBatch * kKeySize);
  for (uint8_t& b : key_bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  std::vector<uint64_t> h1(kBatch);
  std::vector<uint64_t> h2(kBatch);
  for (auto _ : state) {
    simd::DigestBatch16(key_bytes.data(), kBatch, h1.data(), h2.data());
    benchmark::DoNotOptimize(h1);
    benchmark::DoNotOptimize(h2);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_DigestBatch16);

// --- Sketch hashing: per-probe seeded hashes vs one digest + KM probes ---
//
// The pre-digest pipeline hashed the 16-byte key once per sketch row and
// Bloom partition (4 + 3 = 7 seeded hashes per miss-path packet). The digest
// hashes once at ingress and derives every index with one multiply-add
// (Kirsch-Mitzenmacher). These two benches measure exactly that trade on the
// same 7-index workload; the harness trials below gate the ratio in CI.

constexpr size_t kSketchProbes = 7;
constexpr uint64_t kSketchMask = 64 * 1024 - 1;

void BM_SketchHash_PerProbe(benchmark::State& state) {
  Rng rng(21);
  Key key = Key::FromUint64(rng.Next());
  uint64_t acc = 0;
  for (auto _ : state) {
    for (uint64_t seed = 0; seed < kSketchProbes; ++seed) {
      acc += SeededHashBytes(key.bytes.data(), key.bytes.size(), seed) & kSketchMask;
    }
    key = Key::FromUint64(acc);  // serialize iterations
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SketchHash_PerProbe);

void BM_SketchHash_Digest(benchmark::State& state) {
  Rng rng(21);
  Key key = Key::FromUint64(rng.Next());
  uint64_t acc = 0;
  for (auto _ : state) {
    KeyDigest d = KeyDigest::Of(key);
    for (uint64_t seed = 0; seed < kSketchProbes; ++seed) {
      acc += d.Probe(seed) & kSketchMask;
    }
    key = Key::FromUint64(acc);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SketchHash_Digest);

void BM_HashDynFind(benchmark::State& state) {
  HashDyn<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table.Upsert(Key::FromUint64(i), i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashDynFind);

void BM_FlatTableFind(benchmark::State& state) {
  FlatTable<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table.Upsert(Key::FromUint64(i), i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatTableFind);

// Same probe workload near the 7/8 growth ceiling (~87% load), where the
// robin-hood chains are long enough that the load-aware dispatch in
// FlatTable::Locate switches to the 16-way grouped control-byte scan when a
// SIMD level is active. BM_FlatTableFind above sits at 50% load and takes the
// scalar walk in both modes; this is the regime the grouped probe exists for.
void BM_FlatTableFindHighLoad(benchmark::State& state) {
  FlatTable<Key, uint64_t, KeyHasher> table;
  constexpr uint64_t kKeys = 57000;  // 65536-slot table, no growth past it
  for (uint64_t i = 0; i < kKeys; ++i) {
    table.Upsert(Key::FromUint64(i), i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(Key::FromUint64(rng.NextBounded(kKeys))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatTableFindHighLoad);

void BM_StdUnorderedMapFind(benchmark::State& state) {
  std::unordered_map<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table[Key::FromUint64(i)] = i;
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StdUnorderedMapFind);

void BM_ValueStoreRead(benchmark::State& state) {
  ValueStore vs(8, 64 * 1024);
  Value v = Value::Filler(1, 128);
  for (size_t i = 0; i < 64 * 1024; ++i) {
    vs.WriteValue(0xff, i, v);
  }
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vs.ReadValue(0xff, rng.NextBounded(64 * 1024), 128));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ValueStoreRead);

void BM_ZipfSample(benchmark::State& state) {
  ZipfRejectionInversion zipf(100'000'000, 0.99);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample);

void BM_PacketSerializeParse(benchmark::State& state) {
  Packet pkt = MakePut(1, 2, Key::FromUint64(3), Value::Filler(3, 128), 4);
  for (auto _ : state) {
    auto bytes = SerializePacket(pkt);
    auto back = ParsePacket(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSerializeParse);

// --- Simulator event-queue hot path ---
//
// Both variants run the same workload: a rolling backlog of 64 events, each
// executing a 32-byte-capture closure and rescheduling itself at a random
// future time. items/s is therefore Mevents/s of the event loop.

// Pre-rework representation: std::function events (32-byte captures exceed
// libstdc++'s 16-byte SBO, so every schedule heap-allocates) in a (time, seq)
// min-heap maintained with the standard swap-based push/pop_heap.
void BM_EventQueue_StdFunction(benchmark::State& state) {
  struct Ev {
    uint64_t at;
    uint64_t seq;
    std::function<void()> fn;
  };
  auto later = [](const Ev& x, const Ev& y) {
    return x.at != y.at ? x.at > y.at : x.seq > y.seq;
  };
  std::vector<Ev> heap;
  heap.reserve(128);
  uint64_t now = 0;
  uint64_t seq = 0;
  uint64_t sink = 0;
  Rng rng(11);
  uint64_t* sink_ptr = &sink;
  Rng* rng_ptr = &rng;
  auto push = [&](uint64_t delay) {
    uint64_t b = rng.Next();
    heap.push_back(Ev{now + delay, seq++, [sink_ptr, rng_ptr, b] {
                        *sink_ptr += b + rng_ptr->Next();
                      }});
    std::push_heap(heap.begin(), heap.end(), later);
  };
  for (int i = 0; i < 64; ++i) {
    push(1 + rng.NextBounded(1000));
  }
  for (auto _ : state) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Ev ev = std::move(heap.back());
    heap.pop_back();
    now = ev.at;
    ev.fn();
    push(1 + rng.NextBounded(1000));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueue_StdFunction);

// Keeps a self-rescheduling event chain alive inside the real Simulator; the
// 32-byte capture stays inline in the InlineFunction small buffer.
void ScheduleChainEvent(Simulator* sim, uint64_t* sink, Rng* rng) {
  uint64_t b = rng->Next();
  sim->Schedule(1 + rng->NextBounded(1000), [sim, sink, rng, b] {
    *sink += b + rng->Next();
    ScheduleChainEvent(sim, sink, rng);
  });
}

void BM_EventQueue_InlineFunction(benchmark::State& state) {
  Simulator sim;
  uint64_t sink = 0;
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    ScheduleChainEvent(&sim, &sink, &rng);
  }
  for (auto _ : state) {
    sim.RunUntil(sim.Now() + 32 * 1000);  // ~a few thousand events per tick
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(sim.events_processed()));
}
BENCHMARK(BM_EventQueue_InlineFunction);

// --- Packet allocation: per-simulator freelist vs operator new ---

void BM_PacketAlloc_Heap(benchmark::State& state) {
  Packet proto = MakePut(1, 2, Key::FromUint64(3), Value::Filler(3, 128), 4);
  for (auto _ : state) {
    Packet* p = new Packet(proto);
    benchmark::DoNotOptimize(p);
    delete p;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketAlloc_Heap);

void BM_PacketAlloc_Pool(benchmark::State& state) {
  PacketPool pool;
  Packet proto = MakePut(1, 2, Key::FromUint64(3), Value::Filler(3, 128), 4);
  for (auto _ : state) {
    Packet* p = pool.Acquire();
    *p = proto;
    benchmark::DoNotOptimize(p);
    pool.Release(p);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketAlloc_Pool);

// --- Switch route table: FlatTable vs std::unordered_map on IpAddress ---
//
// Note: sequential uint32 keys under libstdc++'s identity std::hash are
// unordered_map's best case (one node per bucket, allocation-order locality).
// FlatTable pays a Mix64 per probe but is immune to degenerate key patterns
// and wins on the 16-byte Key tables above; the switch uses it for both.

void BM_RouteStdUnorderedMapFind(benchmark::State& state) {
  std::unordered_map<IpAddress, uint32_t> routes;
  for (uint32_t i = 0; i < 4096; ++i) {
    routes[0x0a000000u + i] = i % 64;
  }
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routes.find(0x0a000000u + static_cast<uint32_t>(rng.NextBounded(4096))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RouteStdUnorderedMapFind);

void BM_RouteFlatTableFind(benchmark::State& state) {
  FlatTable<IpAddress, uint32_t, UintHasher> routes;
  for (uint32_t i = 0; i < 4096; ++i) {
    routes.Upsert(0x0a000000u + i, i % 64);
  }
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routes.Find(0x0a000000u + static_cast<uint32_t>(rng.NextBounded(4096))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RouteFlatTableFind);

// --- Harness trials (machine-readable, gated by scripts/bench_regress.py) ---
//
// Two trial pairs feed the CI perf gate: SketchHash (one-hash digest vs
// per-probe seeded hashing) and Burst (ProcessBurst vs per-packet
// ProcessPacket on an identical switch + packet stream). Each records a
// deterministic checksum/counter metric — byte-stable across machines — plus
// wall_ms/events for the --perf one-sided comparison.

constexpr size_t kHashTrialKeys = 2'000'000;

void RunSketchHashTrials(bench::BenchHarness& harness) {
  {
    auto& trial = harness.AddTrial("SketchHash/per_probe");
    trial.Config("keys", static_cast<double>(kHashTrialKeys))
        .Config("probes", static_cast<double>(kSketchProbes));
    Rng rng(31);
    uint64_t acc = 0;
    bench::TrialTimer timer(&trial);
    for (size_t i = 0; i < kHashTrialKeys; ++i) {
      Key key = Key::FromUint64(rng.Next());
      for (uint64_t seed = 0; seed < kSketchProbes; ++seed) {
        acc += SeededHashBytes(key.bytes.data(), key.bytes.size(), seed) & kSketchMask;
      }
    }
    timer.SetEvents(kHashTrialKeys);
    trial.Metric("checksum", static_cast<double>(acc & 0xffffffff));
  }
  {
    auto& trial = harness.AddTrial("SketchHash/digest");
    trial.Config("keys", static_cast<double>(kHashTrialKeys))
        .Config("probes", static_cast<double>(kSketchProbes));
    Rng rng(31);
    uint64_t acc = 0;
    bench::TrialTimer timer(&trial);
    for (size_t i = 0; i < kHashTrialKeys; ++i) {
      Key key = Key::FromUint64(rng.Next());
      KeyDigest d = KeyDigest::Of(key);
      for (uint64_t seed = 0; seed < kSketchProbes; ++seed) {
        acc += d.Probe(seed) & kSketchMask;
      }
    }
    timer.SetEvents(kHashTrialKeys);
    trial.Metric("checksum", static_cast<double>(acc & 0xffffffff));
  }
}

constexpr IpAddress kTrialClient = 0x0b000001;
constexpr IpAddress kTrialServer = 0x0a000001;
constexpr size_t kTrialCached = 4096;
constexpr size_t kTrialPackets = 2048;
constexpr size_t kTrialPasses = 100;
constexpr size_t kTrialBurst = 32;

std::unique_ptr<NetCacheSwitch> MakeTrialSwitch() {
  SwitchConfig cfg;
  cfg.num_pipes = 1;
  cfg.ports_per_pipe = 64;
  cfg.cache_capacity = 8 * 1024;
  cfg.indexes_per_pipe = 8 * 1024;
  cfg.stats.counter_slots = 8 * 1024;
  auto sw = std::make_unique<NetCacheSwitch>(nullptr, "trial", cfg);
  NC_CHECK(sw->AddRoute(kTrialServer, 0).ok());
  NC_CHECK(sw->AddRoute(kTrialClient, 32).ok());
  for (uint64_t id = 0; id < kTrialCached; ++id) {
    NC_CHECK(sw->InsertCacheEntry(Key::FromUint64(id),
                                  WorkloadGenerator::ValueFor(id, 128), kTrialServer)
                 .ok());
  }
  return sw;
}

// 70% hits / 30% misses, same stream for both variants so the recorded
// counters must agree exactly (the burst-equivalence property, cross-checked
// here on every CI run via the tight default metric tolerance).
std::vector<Packet> TrialPackets() {
  Rng rng(32);
  std::vector<Packet> pkts;
  pkts.reserve(kTrialPackets);
  for (uint32_t i = 0; i < kTrialPackets; ++i) {
    uint64_t id = rng.NextBounded(10) < 7 ? rng.NextBounded(kTrialCached)
                                          : 1'000'000 + rng.NextBounded(1 << 20);
    pkts.push_back(MakeGet(kTrialClient, kTrialServer, Key::FromUint64(id), i));
  }
  return pkts;
}

class NullSink : public NetCacheSwitch::EmitSink {
 public:
  void OnEmit(uint32_t, Packet*, bool) override { ++emits_; }
  uint64_t emits_ = 0;
};

void RunBurstTrials(bench::BenchHarness& harness) {
  const std::vector<Packet> pkts = TrialPackets();
  {
    auto& trial = harness.AddTrial("Burst/single");
    trial.Config("packets", static_cast<double>(kTrialPackets))
        .Config("passes", static_cast<double>(kTrialPasses));
    auto sw = MakeTrialSwitch();
    std::vector<NetCacheSwitch::Emit> emits;
    bench::TrialTimer timer(&trial);
    for (size_t pass = 0; pass < kTrialPasses; ++pass) {
      for (const Packet& p : pkts) {
        emits.clear();
        sw->ProcessPacket(p, 32, emits);
        benchmark::DoNotOptimize(emits);
      }
    }
    timer.SetEvents(kTrialPasses * kTrialPackets);
    trial.Metric("packets", static_cast<double>(sw->counters().packets))
        .Metric("cache_hits", static_cast<double>(sw->counters().cache_hits));
  }
  {
    auto& trial = harness.AddTrial("Burst/burst32");
    trial.Config("packets", static_cast<double>(kTrialPackets))
        .Config("passes", static_cast<double>(kTrialPasses));
    auto sw = MakeTrialSwitch();
    std::vector<Packet> arena(kTrialBurst);
    std::vector<BurstArrival> arrivals(kTrialBurst);
    NullSink sink;
    bench::TrialTimer timer(&trial);
    for (size_t pass = 0; pass < kTrialPasses; ++pass) {
      for (size_t base = 0; base < kTrialPackets; base += kTrialBurst) {
        for (size_t i = 0; i < kTrialBurst; ++i) {
          arena[i] = pkts[base + i];
          arrivals[i] = BurstArrival{&arena[i], 32};
        }
        sw->ProcessBurst({arrivals.data(), kTrialBurst}, sink);
      }
    }
    timer.SetEvents(kTrialPasses * kTrialPackets);
    trial.Metric("packets", static_cast<double>(sw->counters().packets))
        .Metric("cache_hits", static_cast<double>(sw->counters().cache_hits));
  }
}

// --- SketchBatch / TableGroupProbe trials: the SIMD batch kernels at the
// native dispatch level vs forced-scalar (ScopedScalarSimd). Both legs run
// the identical workload and must produce the identical checksum — the
// bit-equivalence contract of common/simd.h, NC_CHECKed on every run. The
// wall_ms/events pair feeds the --perf gate; on hosts without AVX2 the
// "simd" leg degenerates to a second scalar run (the checksum still pins
// determinism) and the JSON's config.simd_level records that, so
// bench_regress.py refuses cross-host apples-to-oranges comparisons.

constexpr size_t kBatchTrialKeys = 1'000'000;
constexpr size_t kBatchTrialBurst = 32;

uint64_t RunSketchBatchPass(bench::TrialRecord& trial) {
  CountMinSketch cms(4, 64 * 1024, 1);
  BloomFilter bf(3, 256 * 1024, 2);
  Rng rng(41);
  std::vector<KeyDigest> digests(kBatchTrialBurst);
  std::vector<uint32_t> est(kBatchTrialBurst);
  bool already[kBatchTrialBurst];
  uint64_t acc = 0;
  bench::TrialTimer timer(&trial);
  for (size_t base = 0; base < kBatchTrialKeys; base += kBatchTrialBurst) {
    for (size_t i = 0; i < kBatchTrialBurst; ++i) {
      digests[i] = KeyDigest::Of(Key::FromUint64(rng.NextBounded(1 << 16)));
    }
    cms.UpdateBatch(digests.data(), kBatchTrialBurst, est.data());
    bf.TestAndSetBatch(digests.data(), kBatchTrialBurst, already);
    for (size_t i = 0; i < kBatchTrialBurst; ++i) {
      acc += est[i] + (already[i] ? 1 : 0);
    }
  }
  timer.SetEvents(kBatchTrialKeys);
  return acc;
}

void RunSketchBatchTrials(bench::BenchHarness& harness) {
  uint64_t scalar_acc = 0;
  uint64_t simd_acc = 0;
  {
    auto& trial = harness.AddTrial("SketchBatch/scalar");
    trial.Config("keys", static_cast<double>(kBatchTrialKeys))
        .Config("burst", static_cast<double>(kBatchTrialBurst));
    ScopedScalarSimd scalar;
    scalar_acc = RunSketchBatchPass(trial);
    trial.Metric("checksum", static_cast<double>(scalar_acc & 0xffffffff));
  }
  {
    auto& trial = harness.AddTrial("SketchBatch/simd");
    trial.Config("keys", static_cast<double>(kBatchTrialKeys))
        .Config("burst", static_cast<double>(kBatchTrialBurst));
    simd_acc = RunSketchBatchPass(trial);
    trial.Metric("checksum", static_cast<double>(simd_acc & 0xffffffff));
  }
  NC_CHECK(scalar_acc == simd_acc);
}

// --- ServeStage / ServerBurst trials: the fig09 burst-serving kernels.
//
// ServeStage drives ValueStore::StageGather + simd::GatherValueSlots exactly
// the way the switch's ProcessGetRun does — pointer pairs accumulated across
// a 32-packet Get-run, one kernel call over the whole run — across the fig09
// value-size sweep (32/64/96/128 B). ServerBurst drives the storage server's
// ingress stages: simd::DigestGather16 over the burst's keys, digest-derived
// core steering, the one-sweep bucket prefetch, then in-order KvStore::GetInto.
// Each group runs a forced-scalar leg and a native-dispatch leg over the
// identical stream; the checksums must agree bit-for-bit (NC_CHECKed every
// run), and wall_ms/events feed the --perf gate.

constexpr size_t kServeTrialIndexes = 8 * 1024;
constexpr size_t kServeTrialReads = 1'000'000;
constexpr size_t kServeTrialBurst = 32;

uint64_t RunServeStagePass(bench::TrialRecord& trial) {
  ValueStore vs(8, kServeTrialIndexes);
  // fig09 size sweep: 2/4/6/8 units (32..128 B), contiguous bitmaps.
  std::vector<uint32_t> bitmaps(kServeTrialIndexes);
  std::vector<size_t> sizes(kServeTrialIndexes);
  for (size_t i = 0; i < kServeTrialIndexes; ++i) {
    size_t units = 2 * (1 + (i % 4));
    sizes[i] = units * kValueUnitSize;
    bitmaps[i] = (1u << units) - 1;
    vs.WriteValue(bitmaps[i], i, Value::Filler(0xabc + i, sizes[i]));
  }
  Rng rng(51);
  const uint8_t* srcs[kServeTrialBurst * 8];
  uint8_t* dsts[kServeTrialBurst * 8];
  Value out[kServeTrialBurst];
  uint64_t acc = 0;
  bench::TrialTimer timer(&trial);
  for (size_t base = 0; base < kServeTrialReads; base += kServeTrialBurst) {
    size_t cursor = 0;
    for (size_t i = 0; i < kServeTrialBurst; ++i) {
      size_t idx = rng.NextBounded(kServeTrialIndexes);
      out[i].set_size(sizes[idx]);
      cursor = vs.StageGather(bitmaps[idx], idx, sizes[idx], out[i].data(), srcs, dsts, cursor);
    }
    simd::GatherValueSlots(srcs, dsts, cursor);
    for (size_t i = 0; i < kServeTrialBurst; ++i) {
      const uint8_t* bytes = out[i].data();
      for (size_t b = 0; b < out[i].size(); b += kValueUnitSize) {
        acc += bytes[b];
      }
      acc += out[i].size();
    }
  }
  timer.SetEvents(kServeTrialReads);
  return acc;
}

void RunServeStageTrials(bench::BenchHarness& harness) {
  uint64_t scalar_acc = 0;
  uint64_t simd_acc = 0;
  {
    auto& trial = harness.AddTrial("ServeStage/scalar");
    trial.Config("reads", static_cast<double>(kServeTrialReads))
        .Config("burst", static_cast<double>(kServeTrialBurst));
    ScopedScalarSimd scalar;
    scalar_acc = RunServeStagePass(trial);
    trial.Metric("checksum", static_cast<double>(scalar_acc & 0xffffffff));
  }
  {
    auto& trial = harness.AddTrial("ServeStage/simd");
    trial.Config("reads", static_cast<double>(kServeTrialReads))
        .Config("burst", static_cast<double>(kServeTrialBurst));
    simd_acc = RunServeStagePass(trial);
    trial.Metric("checksum", static_cast<double>(simd_acc & 0xffffffff));
  }
  NC_CHECK(scalar_acc == simd_acc);
}

constexpr size_t kServerTrialKeys = 64 * 1024;
constexpr size_t kServerTrialReads = 1'000'000;
constexpr size_t kServerTrialCores = 8;
constexpr uint64_t kServerTrialCoreSeed = 7;

uint64_t RunServerBurstPass(bench::TrialRecord& trial) {
  KvStore store;
  for (uint64_t i = 0; i < kServerTrialKeys; ++i) {
    store.Put(Key::FromUint64(i), WorkloadGenerator::ValueFor(i, 128));
  }
  Rng rng(52);
  Key keys[kServeTrialBurst];
  const uint8_t* key_ptrs[kServeTrialBurst];
  uint64_t h1[kServeTrialBurst];
  uint64_t h2[kServeTrialBurst];
  Value value;
  uint64_t acc = 0;
  bench::TrialTimer timer(&trial);
  for (size_t base = 0; base < kServerTrialReads; base += kServeTrialBurst) {
    for (size_t i = 0; i < kServeTrialBurst; ++i) {
      keys[i] = Key::FromUint64(rng.NextBounded(kServerTrialKeys));
      key_ptrs[i] = keys[i].bytes.data();
    }
    simd::DigestGather16(key_ptrs, kServeTrialBurst, h1, h2);
    // The one-sweep bucket warm, then in-order steering + lookups — the shape
    // of StorageServer::HandleBurst stages 1.5 and 2.
    for (size_t i = 0; i < kServeTrialBurst; ++i) {
      store.Prefetch(h1[i]);
    }
    for (size_t i = 0; i < kServeTrialBurst; ++i) {
      KeyDigest d{h1[i], h2[i]};
      acc += d.Probe(kServerTrialCoreSeed) % kServerTrialCores;
      bool hit = store.GetInto(keys[i], h1[i], &value);
      NC_CHECK(hit);
      acc += value.data()[0] + value.size();
    }
  }
  timer.SetEvents(kServerTrialReads);
  return acc;
}

void RunServerBurstTrials(bench::BenchHarness& harness) {
  uint64_t scalar_acc = 0;
  uint64_t simd_acc = 0;
  {
    auto& trial = harness.AddTrial("ServerBurst/scalar");
    trial.Config("reads", static_cast<double>(kServerTrialReads))
        .Config("burst", static_cast<double>(kServeTrialBurst));
    ScopedScalarSimd scalar;
    scalar_acc = RunServerBurstPass(trial);
    trial.Metric("checksum", static_cast<double>(scalar_acc & 0xffffffff));
  }
  {
    auto& trial = harness.AddTrial("ServerBurst/simd");
    trial.Config("reads", static_cast<double>(kServerTrialReads))
        .Config("burst", static_cast<double>(kServeTrialBurst));
    simd_acc = RunServerBurstPass(trial);
    trial.Metric("checksum", static_cast<double>(simd_acc & 0xffffffff));
  }
  NC_CHECK(scalar_acc == simd_acc);
}

constexpr size_t kProbeTrialEntries = 50'000;
constexpr size_t kProbeTrialLookups = 2'000'000;

uint64_t RunTableProbePass(bench::TrialRecord& trial) {
  FlatTable<Key, uint32_t, KeyHasher> t;
  for (uint64_t i = 0; i < kProbeTrialEntries; ++i) {
    t.Upsert(Key::FromUint64(i), static_cast<uint32_t>(i));
  }
  Rng rng(43);
  uint64_t acc = 0;
  bench::TrialTimer timer(&trial);
  for (size_t i = 0; i < kProbeTrialLookups; ++i) {
    // ~20% misses so the group scan's empty-termination path is exercised.
    uint64_t id = rng.NextBounded(kProbeTrialEntries * 5 / 4);
    const uint32_t* v = t.Find(Key::FromUint64(id));
    acc += v != nullptr ? *v + 1 : 0;
  }
  timer.SetEvents(kProbeTrialLookups);
  return acc;
}

void RunTableGroupProbeTrials(bench::BenchHarness& harness) {
  uint64_t scalar_acc = 0;
  uint64_t simd_acc = 0;
  {
    auto& trial = harness.AddTrial("TableGroupProbe/scalar");
    trial.Config("entries", static_cast<double>(kProbeTrialEntries))
        .Config("lookups", static_cast<double>(kProbeTrialLookups));
    ScopedScalarSimd scalar;
    scalar_acc = RunTableProbePass(trial);
    trial.Metric("checksum", static_cast<double>(scalar_acc & 0xffffffff));
  }
  {
    auto& trial = harness.AddTrial("TableGroupProbe/simd");
    trial.Config("entries", static_cast<double>(kProbeTrialEntries))
        .Config("lookups", static_cast<double>(kProbeTrialLookups));
    simd_acc = RunTableProbePass(trial);
    trial.Metric("checksum", static_cast<double>(simd_acc & 0xffffffff));
  }
  NC_CHECK(scalar_acc == simd_acc);
}

// --- ParallelDes trials: one rack workload under the windowed partitioned
// schedule with 1, 4 and 8 workers. The runs execute the exact same event
// schedule by construction (staging and merge are used uniformly for every
// --sim-threads >= 1), so every counter below must agree bit-for-bit —
// checked here on each CI run. wall_ms/events feed the --perf gate like the
// other trial groups, and the 1-vs-8 pair feeds bench_regress.py --scaling.

struct ParallelDesOutcome {
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t server_reads = 0;
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t windows_merged = 0;  // summed over LPs
};

ParallelDesOutcome RunParallelDesRack(size_t sim_threads, double* wall_sink,
                                      bench::TrialRecord& trial) {
  RackConfig cfg;
  cfg.sim_threads = sim_threads;
  cfg.num_servers = 8;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 1024;
  cfg.switch_config.indexes_per_pipe = 1024;
  cfg.switch_config.stats.counter_slots = 1024;
  cfg.server_template.service_rate_qps = 100e3;
  cfg.controller_config.cache_capacity = 64;
  Rack rack(cfg);
  constexpr uint64_t kKeys = 10'000;
  rack.Populate(kKeys, 128);

  WorkloadConfig wl;
  wl.num_keys = kKeys;
  wl.zipf_alpha = 0.99;
  wl.write_ratio = 0.1;
  wl.seed = 1234;
  WorkloadGenerator gen(wl);
  std::vector<Key> hot;
  for (uint64_t id : gen.popularity().TopKeys(64)) {
    hot.push_back(Key::FromUint64(id));
  }
  rack.WarmCache(hot);

  DriverConfig dc;
  dc.rate_qps = 300e3;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  ParallelDesOutcome out;
  {
    bench::TrialTimer timer(&trial);
    driver.Start();
    rack.sim().RunUntil(100 * kMillisecond);
    driver.Stop();
    rack.sim().RunUntil(110 * kMillisecond);
    timer.SetEvents(rack.sim().events_processed());
  }
  *wall_sink = trial.wall_ms;
  out.completed = driver.completed();
  out.cache_hits = rack.tor().counters().cache_hits;
  for (size_t i = 0; i < rack.num_servers(); ++i) {
    out.server_reads += rack.server(i).stats().reads;
  }
  out.events = rack.sim().events_processed();
  out.windows = rack.sim().windows_run();
  for (size_t lp = 1; lp <= rack.sim().num_lps(); ++lp) {
    out.windows_merged += rack.sim().lp_windows_merged(lp);
  }
  return out;
}

void RunParallelDesTrials(bench::BenchHarness& harness) {
  ParallelDesOutcome outcomes[3];
  size_t idx = 0;
  for (size_t st : {1ul, 4ul, 8ul}) {
    auto& trial = harness.AddTrial("ParallelDes/sim_threads=" + std::to_string(st));
    trial.Config("sim_threads", static_cast<double>(st));
    double wall = 0;
    outcomes[idx] = RunParallelDesRack(st, &wall, trial);
    const ParallelDesOutcome& o = outcomes[idx];
    trial.Metric("completed", static_cast<double>(o.completed))
        .Metric("cache_hits", static_cast<double>(o.cache_hits))
        .Metric("server_reads", static_cast<double>(o.server_reads))
        .Metric("windows", static_cast<double>(o.windows))
        .Metric("windows_merged", static_cast<double>(o.windows_merged))
        .Metric("avg_events_per_window",
                o.windows > 0 ? static_cast<double>(o.events) /
                                    static_cast<double>(o.windows)
                              : 0.0);
    ++idx;
  }
  // The parallel-equivalence property, enforced on every run: worker count
  // must never change results, round decomposition or merge decisions.
  for (size_t i = 1; i < 3; ++i) {
    NC_CHECK(outcomes[0].completed == outcomes[i].completed);
    NC_CHECK(outcomes[0].cache_hits == outcomes[i].cache_hits);
    NC_CHECK(outcomes[0].server_reads == outcomes[i].server_reads);
    NC_CHECK(outcomes[0].events == outcomes[i].events);
    NC_CHECK(outcomes[0].windows == outcomes[i].windows);
    NC_CHECK(outcomes[0].windows_merged == outcomes[i].windows_merged);
  }
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "micro_datastructures");
  netcache::RunSketchHashTrials(harness);
  netcache::RunBurstTrials(harness);
  netcache::RunSketchBatchTrials(harness);
  netcache::RunServeStageTrials(harness);
  netcache::RunServerBurstTrials(harness);
  netcache::RunTableGroupProbeTrials(harness);
  netcache::RunParallelDesTrials(harness);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness.Finish();
}
