// Microbenchmarks of the core data structures (google-benchmark): the
// components whose per-packet cost determines the software pipeline rate.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/rng.h"
#include "common/zipf.h"
#include "dataplane/value_store.h"
#include "kvstore/flat_table.h"
#include "kvstore/hash_table.h"
#include "proto/packet.h"
#include "sketch/bloom.h"
#include "sketch/count_min.h"

namespace netcache {
namespace {

void BM_CountMinUpdate(benchmark::State& state) {
  CountMinSketch cms(4, 64 * 1024, 1);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cms.Update(Key::FromUint64(rng.NextBounded(1 << 20))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountMinUpdate);

void BM_BloomTestAndSet(benchmark::State& state) {
  BloomFilter bf(3, 256 * 1024, 2);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.TestAndSet(Key::FromUint64(rng.NextBounded(1 << 20))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomTestAndSet);

void BM_HashDynFind(benchmark::State& state) {
  HashDyn<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table.Upsert(Key::FromUint64(i), i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashDynFind);

void BM_FlatTableFind(benchmark::State& state) {
  FlatTable<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table.Upsert(Key::FromUint64(i), i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatTableFind);

void BM_StdUnorderedMapFind(benchmark::State& state) {
  std::unordered_map<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table[Key::FromUint64(i)] = i;
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StdUnorderedMapFind);

void BM_ValueStoreRead(benchmark::State& state) {
  ValueStore vs(8, 64 * 1024);
  Value v = Value::Filler(1, 128);
  for (size_t i = 0; i < 64 * 1024; ++i) {
    vs.WriteValue(0xff, i, v);
  }
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vs.ReadValue(0xff, rng.NextBounded(64 * 1024), 128));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ValueStoreRead);

void BM_ZipfSample(benchmark::State& state) {
  ZipfRejectionInversion zipf(100'000'000, 0.99);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample);

void BM_PacketSerializeParse(benchmark::State& state) {
  Packet pkt = MakePut(1, 2, Key::FromUint64(3), Value::Filler(3, 128), 4);
  for (auto _ : state) {
    auto bytes = SerializePacket(pkt);
    auto back = ParsePacket(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSerializeParse);

}  // namespace
}  // namespace netcache

BENCHMARK_MAIN();
