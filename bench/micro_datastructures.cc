// Microbenchmarks of the core data structures (google-benchmark): the
// components whose per-packet cost determines the software pipeline rate.
//
// The *EventQueue* and *PacketAlloc* groups bound the simulator hot path:
// BM_EventQueue_StdFunction replays the heap discipline the simulator used
// before the zero-allocation rework (std::function events, swap-based sift)
// while BM_EventQueue_InlineFunction drives the real Simulator; their ratio
// is the events/sec speedup the rework bought. Run with
// --benchmark_min_time=0.2 on older google-benchmark builds.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "dataplane/value_store.h"
#include "kvstore/flat_table.h"
#include "kvstore/hash_table.h"
#include "net/packet_pool.h"
#include "net/simulator.h"
#include "proto/packet.h"
#include "sketch/bloom.h"
#include "sketch/count_min.h"

namespace netcache {
namespace {

void BM_CountMinUpdate(benchmark::State& state) {
  CountMinSketch cms(4, 64 * 1024, 1);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cms.Update(Key::FromUint64(rng.NextBounded(1 << 20))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountMinUpdate);

void BM_BloomTestAndSet(benchmark::State& state) {
  BloomFilter bf(3, 256 * 1024, 2);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.TestAndSet(Key::FromUint64(rng.NextBounded(1 << 20))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomTestAndSet);

void BM_HashDynFind(benchmark::State& state) {
  HashDyn<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table.Upsert(Key::FromUint64(i), i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashDynFind);

void BM_FlatTableFind(benchmark::State& state) {
  FlatTable<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table.Upsert(Key::FromUint64(i), i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatTableFind);

void BM_StdUnorderedMapFind(benchmark::State& state) {
  std::unordered_map<Key, uint64_t, KeyHasher> table;
  for (uint64_t i = 0; i < 64 * 1024; ++i) {
    table[Key::FromUint64(i)] = i;
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(Key::FromUint64(rng.NextBounded(64 * 1024))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StdUnorderedMapFind);

void BM_ValueStoreRead(benchmark::State& state) {
  ValueStore vs(8, 64 * 1024);
  Value v = Value::Filler(1, 128);
  for (size_t i = 0; i < 64 * 1024; ++i) {
    vs.WriteValue(0xff, i, v);
  }
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vs.ReadValue(0xff, rng.NextBounded(64 * 1024), 128));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ValueStoreRead);

void BM_ZipfSample(benchmark::State& state) {
  ZipfRejectionInversion zipf(100'000'000, 0.99);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample);

void BM_PacketSerializeParse(benchmark::State& state) {
  Packet pkt = MakePut(1, 2, Key::FromUint64(3), Value::Filler(3, 128), 4);
  for (auto _ : state) {
    auto bytes = SerializePacket(pkt);
    auto back = ParsePacket(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSerializeParse);

// --- Simulator event-queue hot path ---
//
// Both variants run the same workload: a rolling backlog of 64 events, each
// executing a 32-byte-capture closure and rescheduling itself at a random
// future time. items/s is therefore Mevents/s of the event loop.

// Pre-rework representation: std::function events (32-byte captures exceed
// libstdc++'s 16-byte SBO, so every schedule heap-allocates) in a (time, seq)
// min-heap maintained with the standard swap-based push/pop_heap.
void BM_EventQueue_StdFunction(benchmark::State& state) {
  struct Ev {
    uint64_t at;
    uint64_t seq;
    std::function<void()> fn;
  };
  auto later = [](const Ev& x, const Ev& y) {
    return x.at != y.at ? x.at > y.at : x.seq > y.seq;
  };
  std::vector<Ev> heap;
  heap.reserve(128);
  uint64_t now = 0;
  uint64_t seq = 0;
  uint64_t sink = 0;
  Rng rng(11);
  uint64_t* sink_ptr = &sink;
  Rng* rng_ptr = &rng;
  auto push = [&](uint64_t delay) {
    uint64_t b = rng.Next();
    heap.push_back(Ev{now + delay, seq++, [sink_ptr, rng_ptr, b] {
                        *sink_ptr += b + rng_ptr->Next();
                      }});
    std::push_heap(heap.begin(), heap.end(), later);
  };
  for (int i = 0; i < 64; ++i) {
    push(1 + rng.NextBounded(1000));
  }
  for (auto _ : state) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Ev ev = std::move(heap.back());
    heap.pop_back();
    now = ev.at;
    ev.fn();
    push(1 + rng.NextBounded(1000));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueue_StdFunction);

// Keeps a self-rescheduling event chain alive inside the real Simulator; the
// 32-byte capture stays inline in the InlineFunction small buffer.
void ScheduleChainEvent(Simulator* sim, uint64_t* sink, Rng* rng) {
  uint64_t b = rng->Next();
  sim->Schedule(1 + rng->NextBounded(1000), [sim, sink, rng, b] {
    *sink += b + rng->Next();
    ScheduleChainEvent(sim, sink, rng);
  });
}

void BM_EventQueue_InlineFunction(benchmark::State& state) {
  Simulator sim;
  uint64_t sink = 0;
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    ScheduleChainEvent(&sim, &sink, &rng);
  }
  for (auto _ : state) {
    sim.RunUntil(sim.Now() + 32 * 1000);  // ~a few thousand events per tick
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(sim.events_processed()));
}
BENCHMARK(BM_EventQueue_InlineFunction);

// --- Packet allocation: per-simulator freelist vs operator new ---

void BM_PacketAlloc_Heap(benchmark::State& state) {
  Packet proto = MakePut(1, 2, Key::FromUint64(3), Value::Filler(3, 128), 4);
  for (auto _ : state) {
    Packet* p = new Packet(proto);
    benchmark::DoNotOptimize(p);
    delete p;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketAlloc_Heap);

void BM_PacketAlloc_Pool(benchmark::State& state) {
  PacketPool pool;
  Packet proto = MakePut(1, 2, Key::FromUint64(3), Value::Filler(3, 128), 4);
  for (auto _ : state) {
    Packet* p = pool.Acquire();
    *p = proto;
    benchmark::DoNotOptimize(p);
    pool.Release(p);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketAlloc_Pool);

// --- Switch route table: FlatTable vs std::unordered_map on IpAddress ---
//
// Note: sequential uint32 keys under libstdc++'s identity std::hash are
// unordered_map's best case (one node per bucket, allocation-order locality).
// FlatTable pays a Mix64 per probe but is immune to degenerate key patterns
// and wins on the 16-byte Key tables above; the switch uses it for both.

void BM_RouteStdUnorderedMapFind(benchmark::State& state) {
  std::unordered_map<IpAddress, uint32_t> routes;
  for (uint32_t i = 0; i < 4096; ++i) {
    routes[0x0a000000u + i] = i % 64;
  }
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routes.find(0x0a000000u + static_cast<uint32_t>(rng.NextBounded(4096))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RouteStdUnorderedMapFind);

void BM_RouteFlatTableFind(benchmark::State& state) {
  FlatTable<IpAddress, uint32_t, UintHasher> routes;
  for (uint32_t i = 0; i < 4096; ++i) {
    routes.Upsert(0x0a000000u + i, i % 64);
  }
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routes.Find(0x0a000000u + static_cast<uint32_t>(rng.NextBounded(4096))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RouteFlatTableFind);

}  // namespace
}  // namespace netcache

BENCHMARK_MAIN();
