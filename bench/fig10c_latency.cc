// Figure 10(c): average query latency vs offered throughput, NoCache vs
// NetCache, via packet-level discrete-event simulation.
//
// The paper's testbed runs 128 x 10 MQPS servers (saturating at ~0.2 BQPS
// without the cache and exceeding 2 BQPS with it). A packet-level simulation
// of that absolute scale is unnecessary: the latency/throughput *shape* is a
// queueing phenomenon, so we simulate a proportionally scaled rack (16
// servers x 50 KQPS) and report absolute simulated latencies. NoCache
// saturates at the bottleneck partition and its latency spikes; NetCache
// stays flat to ~5x higher load because cache hits skip the server entirely.

#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "client/workload_driver.h"
#include "core/rack.h"
#include "core/sweep.h"

namespace netcache {
namespace {

struct Point {
  double offered_qps;
  double avg_us;
  double p99_us;
  double goodput_qps;
  uint64_t events;
  double wall_ms;
};

Point RunPoint(bench::BenchHarness& harness, bool cache_enabled, double rate_qps) {
  RackConfig cfg;
  cfg.sim_threads = harness.sim_threads();
  cfg.num_servers = 16;
  cfg.num_clients = 1;
  cfg.cache_enabled = cache_enabled;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.server_template.service_rate_qps = 50e3;  // scaled-down servers
  cfg.server_template.queue_capacity = 128;
  cfg.controller_config.cache_capacity = 256;
  // Long client timeout: we want queueing latency, not timeout truncation.
  cfg.client_template.reply_timeout = 50 * kMillisecond;

  Rack rack(cfg);
  harness.RecordEffectiveSimThreads(bench::EffectiveSimThreads(rack.sim()));
  constexpr uint64_t kNumKeys = 20'000;
  rack.Populate(kNumKeys, 128);

  WorkloadConfig wl;
  wl.num_keys = kNumKeys;
  wl.zipf_alpha = 0.99;
  wl.seed = 7;
  WorkloadGenerator gen(wl);

  if (cache_enabled) {
    std::vector<Key> hot;
    for (uint64_t id : gen.popularity().TopKeys(200)) {
      hot.push_back(Key::FromUint64(id));
    }
    rack.WarmCache(hot);
  }

  DriverConfig dc;
  dc.rate_qps = rate_qps;
  dc.adaptive = false;
  dc.bin_width = 100 * kMillisecond;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);

  // Warm up 100 ms, then measure 300 ms.
  driver.Start();
  rack.sim().RunUntil(100 * kMillisecond);
  rack.client(0).latency().Reset();
  uint64_t completed_before = driver.completed();
  rack.sim().RunUntil(400 * kMillisecond);
  driver.Stop();

  const Histogram& lat = rack.client(0).latency();
  Point p;
  p.offered_qps = rate_qps;
  p.avg_us = lat.Mean() / 1e3;
  p.p99_us = static_cast<double>(lat.Quantile(0.99)) / 1e3;
  p.goodput_qps = static_cast<double>(driver.completed() - completed_before) / 0.3;
  p.events = rack.sim().events_processed();
  p.wall_ms = 0;
  return p;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Figure 10(c): latency vs throughput (scaled rack: 16 servers x 50 KQPS, "
      "zipf-0.99, 200 cached items)");
  std::printf("%-12s | %10s %10s %12s | %10s %10s %12s\n", "offered", "NoC-avg",
              "NoC-p99", "NoC-goodput", "NC-avg", "NC-p99", "NC-goodput");

  // 18 independent DES trials (9 rates x {NoCache, NetCache}) fanned out over
  // worker threads; results come back in submission order so stdout and JSON
  // are identical whether run serially or with --threads=N.
  struct Trial {
    double rate;
    bool cache;
  };
  std::vector<Trial> grid;
  for (double rate : {25e3, 50e3, 100e3, 150e3, 200e3, 300e3, 500e3, 800e3, 1.2e6}) {
    grid.push_back(Trial{rate, false});
    grid.push_back(Trial{rate, true});
  }
  std::vector<Point> points =
      RunSweep(grid, harness.sweep_options(),
               [&harness](const Trial& t, uint64_t /*seed*/, size_t /*index*/) {
        auto start = std::chrono::steady_clock::now();
        Point p = RunPoint(harness, t.cache, t.rate);
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        p.wall_ms = elapsed.count();
        return p;
      });

  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    const Point& none = points[i];
    const Point& nc = points[i + 1];
    std::printf("%-12s | %8.1fus %8.1fus %12s | %8.1fus %8.1fus %12s\n",
                bench::Qps(none.offered_qps).c_str(), none.avg_us, none.p99_us,
                bench::Qps(none.goodput_qps).c_str(), nc.avg_us, nc.p99_us,
                bench::Qps(nc.goodput_qps).c_str());
    for (const Point* p : {&none, &nc}) {
      bench::TrialRecord rec;
      rec.label = std::string(p == &nc ? "netcache" : "nocache") + "/offered=" +
                  bench::Qps(p->offered_qps);
      rec.Config("offered_qps", p->offered_qps)
          .Config("cache_enabled", p == &nc ? 1 : 0)
          .Metric("avg_us", p->avg_us)
          .Metric("p99_us", p->p99_us)
          .Metric("goodput_qps", p->goodput_qps);
      rec.wall_ms = p->wall_ms;
      rec.events = p->events;
      harness.AddTrialRecord(std::move(rec));
    }
  }
  bench::PrintNote("");
  bench::PrintNote("Paper: NoCache holds ~15 us up to 0.2 BQPS then saturates (queues grow");
  bench::PrintNote("unboundedly); NetCache stays at 7-12 us all the way to 2 BQPS because");
  bench::PrintNote("cache hits skip the storage servers. The same knee appears here at the");
  bench::PrintNote("scaled bottleneck (~0.3x vs ~5x of the NoCache saturation point).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig10c_latency");
  netcache::Run(harness);
  return harness.Finish();
}
