// Figure 10(e): throughput vs number of cached items (log-scale x in the
// paper), for zipf-0.9 and zipf-0.99 read-only workloads. Shows that ~1000
// items already balance 128 servers, with diminishing returns beyond.

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

SaturationConfig PaperRack(double alpha, size_t cache) {
  SaturationConfig cfg;
  cfg.num_partitions = 128;
  cfg.server_rate_qps = 10e6;
  cfg.num_keys = 100'000'000;
  cfg.zipf_alpha = alpha;
  cfg.cache_size = cache;
  cfg.exact_ranks = 262'144;
  return cfg;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Figure 10(e): throughput vs cache size (128 servers x 10 MQPS, read-only)");
  std::printf("%-8s | %12s %12s %12s | %12s %12s %12s\n", "cache", "z0.9-total",
              "z0.9-cache", "z0.9-server", "z0.99-total", "z0.99-cache", "z0.99-server");
  for (size_t cache : {10ul, 100ul, 1000ul, 2000ul, 5000ul, 10000ul, 20000ul, 50000ul,
                       100000ul}) {
    SaturationResult r90 = SolveSaturation(PaperRack(0.9, cache));
    SaturationResult r99 = SolveSaturation(PaperRack(0.99, cache));
    std::printf("%-8zu | %12s %12s %12s | %12s %12s %12s\n", cache,
                bench::Qps(r90.total_qps).c_str(), bench::Qps(r90.cache_qps).c_str(),
                bench::Qps(r90.server_qps).c_str(), bench::Qps(r99.total_qps).c_str(),
                bench::Qps(r99.cache_qps).c_str(), bench::Qps(r99.server_qps).c_str());
    harness.AddTrial("cache=" + std::to_string(cache))
        .Config("cache_size", static_cast<double>(cache))
        .Metric("zipf90_total_qps", r90.total_qps)
        .Metric("zipf90_cache_qps", r90.cache_qps)
        .Metric("zipf99_total_qps", r99.total_qps)
        .Metric("zipf99_cache_qps", r99.cache_qps);
  }
  bench::PrintNote("");
  bench::PrintNote("Paper: 1,000 items suffice to balance 128 servers; growth beyond is the");
  bench::PrintNote("cache absorbing more hits (diminishing, note the log-scale x axis); the");
  bench::PrintNote("steeper skew (0.99) yields more cache throughput at large cache sizes.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig10e_cache_size");
  netcache::Run(harness);
  return harness.Finish();
}
