// Ablation: per-core sharding amplifies skew (§1: "This degradation can be
// further amplified when storage servers use per-core sharding").
//
// Same rack hardware (128 servers x 16 cores), two serving models:
//   per-server: each server is one partition at 10 MQPS (shared-memory KV)
//   per-core:   each core is its own partition at 10/16 MQPS (RSS sharding)
// The theory (§2, [17]) says the cache must hold O(N log N) items for N
// *partitions* — so per-core sharding both worsens NoCache (finer, hotter
// bottleneck) and demands a larger cache, which the switch easily holds.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

SaturationResult Solve(size_t partitions, double rate, size_t cache) {
  SaturationConfig cfg;
  cfg.num_partitions = partitions;
  cfg.server_rate_qps = rate;
  cfg.num_keys = 100'000'000;
  cfg.zipf_alpha = 0.99;
  cfg.cache_size = cache;
  cfg.exact_ranks = 262'144;
  return SolveSaturation(cfg);
}

void Run() {
  bench::PrintHeader(
      "Ablation: per-core sharding (128 servers x 16 cores, zipf-0.99, read-only)");
  std::printf("%-26s | %12s %12s %12s %12s\n", "serving model", "NoCache", "NC-1K", "NC-10K",
              "NC-64K");

  // Per-server partitions: 128 x 10 MQPS.
  std::printf("%-26s | %12s %12s %12s %12s\n", "per-server (128 parts)",
              bench::Qps(Solve(128, 10e6, 0).total_qps).c_str(),
              bench::Qps(Solve(128, 10e6, 1000).total_qps).c_str(),
              bench::Qps(Solve(128, 10e6, 10'000).total_qps).c_str(),
              bench::Qps(Solve(128, 10e6, 64'000).total_qps).c_str());

  // Per-core partitions: 2048 x 0.625 MQPS (same aggregate hardware).
  std::printf("%-26s | %12s %12s %12s %12s\n", "per-core  (2048 parts)",
              bench::Qps(Solve(2048, 10e6 / 16, 0).total_qps).c_str(),
              bench::Qps(Solve(2048, 10e6 / 16, 1000).total_qps).c_str(),
              bench::Qps(Solve(2048, 10e6 / 16, 10'000).total_qps).c_str(),
              bench::Qps(Solve(2048, 10e6 / 16, 64'000).total_qps).c_str());

  bench::PrintNote("");
  bench::PrintNote("NoCache collapses ~16x harder with per-core sharding (one core, not one");
  bench::PrintNote("server, absorbs the hottest key). The O(N log N) cache requirement now");
  bench::PrintNote("counts cores: 1K items no longer balance 2048 partitions, 10K+ do —");
  bench::PrintNote("still far below the 64K entries the switch provides (§2, §7.2).");
}

}  // namespace
}  // namespace netcache

int main() {
  netcache::Run();
  return 0;
}
