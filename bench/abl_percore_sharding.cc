// Ablation: per-core sharding amplifies skew (§1: "This degradation can be
// further amplified when storage servers use per-core sharding").
//
// Same rack hardware (128 servers x 16 cores), two serving models:
//   per-server: each server is one partition at 10 MQPS (shared-memory KV)
//   per-core:   each core is its own partition at 10/16 MQPS (RSS sharding)
// The theory (§2, [17]) says the cache must hold O(N log N) items for N
// *partitions* — so per-core sharding both worsens NoCache (finer, hotter
// bottleneck) and demands a larger cache, which the switch easily holds.

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

SaturationResult Solve(size_t partitions, double rate, size_t cache) {
  SaturationConfig cfg;
  cfg.num_partitions = partitions;
  cfg.server_rate_qps = rate;
  cfg.num_keys = 100'000'000;
  cfg.zipf_alpha = 0.99;
  cfg.cache_size = cache;
  cfg.exact_ranks = 262'144;
  return SolveSaturation(cfg);
}

void Row(bench::BenchHarness& harness, const char* title, const char* label,
         size_t partitions, double rate) {
  SaturationResult none = Solve(partitions, rate, 0);
  SaturationResult c1k = Solve(partitions, rate, 1000);
  SaturationResult c10k = Solve(partitions, rate, 10'000);
  SaturationResult c64k = Solve(partitions, rate, 64'000);
  std::printf("%-26s | %12s %12s %12s %12s\n", title, bench::Qps(none.total_qps).c_str(),
              bench::Qps(c1k.total_qps).c_str(), bench::Qps(c10k.total_qps).c_str(),
              bench::Qps(c64k.total_qps).c_str());
  harness.AddTrial(label)
      .Config("partitions", static_cast<double>(partitions))
      .Metric("nocache_qps", none.total_qps)
      .Metric("cache1k_qps", c1k.total_qps)
      .Metric("cache10k_qps", c10k.total_qps)
      .Metric("cache64k_qps", c64k.total_qps);
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: per-core sharding (128 servers x 16 cores, zipf-0.99, read-only)");
  std::printf("%-26s | %12s %12s %12s %12s\n", "serving model", "NoCache", "NC-1K", "NC-10K",
              "NC-64K");

  // Per-server partitions: 128 x 10 MQPS.
  Row(harness, "per-server (128 parts)", "per-server", 128, 10e6);
  // Per-core partitions: 2048 x 0.625 MQPS (same aggregate hardware).
  Row(harness, "per-core  (2048 parts)", "per-core", 2048, 10e6 / 16);

  bench::PrintNote("");
  bench::PrintNote("NoCache collapses ~16x harder with per-core sharding (one core, not one");
  bench::PrintNote("server, absorbs the hottest key). The O(N log N) cache requirement now");
  bench::PrintNote("counts cores: 1K items no longer balance 2048 partitions, 10K+ do —");
  bench::PrintNote("still far below the 64K entries the switch provides (§2, §7.2).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_percore_sharding");
  netcache::Run(harness);
  return harness.Finish();
}
