// Figure 10(d): throughput vs write ratio, for uniform writes and for writes
// that follow the same zipf-0.99 skew as the reads. Reproduces the paper's
// crossover: with skewed writes NetCache degenerates to (or slightly below)
// NoCache once the write ratio passes ~0.2, while with uniform writes the
// degradation is linear and NoCache *improves* with more (balanced) writes.

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

SaturationConfig PaperRack(double write_ratio, bool skewed_writes, size_t cache) {
  SaturationConfig cfg;
  cfg.num_partitions = 128;
  cfg.server_rate_qps = 10e6;
  cfg.num_keys = 100'000'000;
  cfg.zipf_alpha = 0.99;
  cfg.cache_size = cache;
  cfg.write_ratio = write_ratio;
  cfg.skewed_writes = skewed_writes;
  cfg.exact_ranks = 262'144;
  return cfg;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Figure 10(d): throughput vs write ratio (zipf-0.99 reads, 128 servers, "
      "10K cached items)");
  std::printf("%-6s | %14s %14s | %14s %14s\n", "w", "NetCache-unif", "NoCache-unif",
              "NetCache-skew", "NoCache-skew");
  for (double w : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0}) {
    SaturationResult nc_u = SolveSaturation(PaperRack(w, false, 10'000));
    SaturationResult base_u = SolveSaturation(PaperRack(w, false, 0));
    SaturationResult nc_s = SolveSaturation(PaperRack(w, true, 10'000));
    SaturationResult base_s = SolveSaturation(PaperRack(w, true, 0));
    std::printf("%-6.3f | %14s %14s | %14s %14s\n", w, bench::Qps(nc_u.total_qps).c_str(),
                bench::Qps(base_u.total_qps).c_str(), bench::Qps(nc_s.total_qps).c_str(),
                bench::Qps(base_s.total_qps).c_str());
    char label[32];
    std::snprintf(label, sizeof(label), "w=%.3f", w);
    harness.AddTrial(label)
        .Config("write_ratio", w)
        .Metric("netcache_uniform_qps", nc_u.total_qps)
        .Metric("nocache_uniform_qps", base_u.total_qps)
        .Metric("netcache_skewed_qps", nc_s.total_qps)
        .Metric("nocache_skewed_qps", base_s.total_qps);
  }
  bench::PrintNote("");
  bench::PrintNote("Paper: uniform writes reduce NetCache linearly while lifting NoCache;");
  bench::PrintNote("skewed writes erase the cache benefit beyond w ~= 0.2 (coherence cost).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig10d_write_ratio");
  netcache::Run(harness);
  return harness.Finish();
}
