// Ablation: cache-update policy under the control-plane rate limit (§4.3).
//
// The paper argues LRU/LFU-style "update the cache on every query" policies
// are infeasible on a switch whose tables sustain ~10K updates/second, and
// that threshold-triggered updates (heavy hitters only) keep churn low.
//
// We replay one second of a zipf workload whose popularity was just permuted
// (so the cache starts stale) against three policies, all limited to the
// same update budget:
//   - netcache:   HH detector reports once per newly-hot key; controller
//                 inserts, evicting the coldest sampled victim.
//   - lru-everyq: classic LRU — every miss inserts the key and evicts the
//                 LRU entry (each miss costs one table update).
//   - lfu-everyq: insert on miss only if the key's (exact) frequency so far
//                 exceeds the cache's current minimum (still one table
//                 update per accepted miss).
// We report the cache hit ratio achieved and the number of switch updates
// consumed; updates beyond the budget are dropped (the switch driver stalls).

#include <cstdio>
#include <list>
#include <unordered_map>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "sketch/heavy_hitter.h"
#include "workload/popularity.h"

namespace netcache {
namespace {

constexpr uint64_t kNumKeys = 1'000'000;
constexpr size_t kCacheSize = 10'000;
constexpr size_t kQueries = 2'000'000;  // ~one second at 2 MQPS
constexpr size_t kUpdateBudget = 10'000;  // table updates available (§4.3)

struct PolicyResult {
  double hit_ratio = 0;
  size_t updates_wanted = 0;
  size_t updates_applied = 0;
};

// Common driver: `on_miss(id, count_so_far)` returns true when the policy
// wants to install the key (costing one update; honored only under budget,
// evicting some victim chosen by the policy via `evict`).
template <typename Policy>
PolicyResult Replay(Policy&& policy, const PopularityMap& pop,
                    const ZipfRejectionInversion& zipf) {
  Rng rng(99);
  PolicyResult out;
  size_t hits = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    uint64_t id = pop.KeyAtRank(zipf.Sample(rng));
    if (policy.Contains(id)) {
      ++hits;
      policy.OnHit(id);
      continue;
    }
    if (policy.WantsInsert(id)) {
      ++out.updates_wanted;
      if (out.updates_applied < kUpdateBudget) {
        // Each insert = 1 lookup-table add (+1 delete, charged together).
        ++out.updates_applied;
        policy.Install(id);
      }
    }
  }
  out.hit_ratio = static_cast<double>(hits) / static_cast<double>(kQueries);
  return out;
}

// Shared cache bookkeeping: set of cached ids with an intrusive LRU list.
class CacheBase {
 public:
  bool Contains(uint64_t id) const { return index_.count(id) != 0; }
  size_t Size() const { return index_.size(); }

  void Touch(uint64_t id) {
    auto it = index_.find(id);
    lru_.splice(lru_.begin(), lru_, it->second);
  }

  void InsertEvictLru(uint64_t id) {
    if (index_.size() >= kCacheSize) {
      uint64_t victim = lru_.back();
      lru_.pop_back();
      index_.erase(victim);
    }
    lru_.push_front(id);
    index_[id] = lru_.begin();
  }

  // Seeds the cache with the previous epoch's hottest keys.
  void Warm(const std::vector<uint64_t>& ids) {
    for (uint64_t id : ids) {
      InsertEvictLru(id);
    }
  }

 protected:
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

class LruPolicy : public CacheBase {
 public:
  void OnHit(uint64_t id) { Touch(id); }
  bool WantsInsert(uint64_t) { return true; }  // every miss updates the cache
  void Install(uint64_t id) { InsertEvictLru(id); }
};

class LfuPolicy : public CacheBase {
 public:
  void OnHit(uint64_t id) {
    Touch(id);
    ++freq_[id];
  }
  bool WantsInsert(uint64_t id) {
    // Insert when this key has been seen more often than the LRU tail's
    // frequency — a software LFU approximation, still one update per accept.
    uint32_t f = ++freq_[id];
    if (index_.size() < kCacheSize) {
      return true;
    }
    return f > freq_[lru_.back()];
  }
  void Install(uint64_t id) { InsertEvictLru(id); }

 private:
  std::unordered_map<uint64_t, uint32_t> freq_;
};

class NetCachePolicy : public CacheBase {
 public:
  NetCachePolicy() : hh_(MakeConfig()) {}

  static HeavyHitterConfig MakeConfig() {
    HeavyHitterConfig cfg;
    cfg.hot_threshold = 128;
    return cfg;
  }

  void OnHit(uint64_t id) { ++counter_[id]; }
  bool WantsInsert(uint64_t id) {
    // Report-once semantics via the Bloom filter; then compare against a
    // sampled victim like the controller does.
    return hh_.Offer(Key::FromUint64(id));
  }
  void Install(uint64_t id) {
    // Evict the coldest of 8 sampled cached keys.
    if (index_.size() >= kCacheSize) {
      uint64_t victim = lru_.back();
      uint32_t victim_count = counter_[victim];
      auto it = lru_.begin();
      Rng rng(id);
      for (int s = 0; s < 8 && it != lru_.end(); ++s, ++it) {
        if (counter_[*it] < victim_count) {
          victim = *it;
          victim_count = counter_[*it];
        }
      }
      if (victim_count >= 128) {
        return;  // sampled victims are all hotter than the threshold
      }
      index_.erase(victim);
      lru_.remove(victim);
    }
    lru_.push_front(id);
    index_[id] = lru_.begin();
  }

 private:
  HeavyHitterDetector hh_;
  std::unordered_map<uint64_t, uint32_t> counter_;
};

void AddPolicyTrial(bench::BenchHarness& harness, const char* name,
                    const PolicyResult& r) {
  harness.AddTrial(name)
      .Metric("hit_ratio", r.hit_ratio)
      .Metric("updates_wanted", static_cast<double>(r.updates_wanted))
      .Metric("updates_applied", static_cast<double>(r.updates_applied));
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: cache-update policy under a 10K updates/s control plane "
      "(zipf-0.99, 10K cache, popularity shuffled at t=0)");

  // Popularity permutation: the cache holds the *old* top-10K while 2000 of
  // them just went cold (a 'random' churn event, Fig 11(b) style).
  PopularityMap pop(kNumKeys);
  std::vector<uint64_t> old_top = pop.TopKeys(kCacheSize);
  Rng churn(5);
  pop.RandomReplace(2000, kCacheSize, churn);
  ZipfRejectionInversion zipf(kNumKeys, 0.99);

  std::printf("%-12s | %10s %16s %16s\n", "policy", "hit-ratio", "updates-wanted",
              "updates-applied");

  LruPolicy lru;
  lru.Warm(old_top);
  PolicyResult r1 = Replay(lru, pop, zipf);
  std::printf("%-12s | %10.3f %16zu %16zu%s\n", "lru-everyq", r1.hit_ratio,
              r1.updates_wanted, r1.updates_applied,
              r1.updates_wanted > kUpdateBudget ? "  (budget exhausted)" : "");
  AddPolicyTrial(harness, "lru-everyq", r1);

  LfuPolicy lfu;
  lfu.Warm(old_top);
  PolicyResult r2 = Replay(lfu, pop, zipf);
  std::printf("%-12s | %10.3f %16zu %16zu%s\n", "lfu-everyq", r2.hit_ratio,
              r2.updates_wanted, r2.updates_applied,
              r2.updates_wanted > kUpdateBudget ? "  (budget exhausted)" : "");
  AddPolicyTrial(harness, "lfu-everyq", r2);

  NetCachePolicy nc;
  nc.Warm(old_top);
  PolicyResult r3 = Replay(nc, pop, zipf);
  std::printf("%-12s | %10.3f %16zu %16zu\n", "netcache", r3.hit_ratio, r3.updates_wanted,
              r3.updates_applied);
  AddPolicyTrial(harness, "netcache", r3);

  bench::PrintNote("");
  bench::PrintNote("LRU wants an update for EVERY miss (~1M/s here) — 100x beyond what the");
  bench::PrintNote("switch driver can apply, so its cache decays to whatever the budget");
  bench::PrintNote("happens to admit. The HH-threshold policy asks only for newly-hot keys");
  bench::PrintNote("and matches or beats the hit ratio within budget (§4.3).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_cache_policy");
  netcache::Run(harness);
  return harness.Finish();
}
