// Cross-validation: the closed-form capacity model vs the packet-level
// discrete-event simulation, on configurations small enough to run both.
//
// The figure benches split work between the two evaluation modes (DESIGN.md
// §4); this bench checks they agree where they overlap, which is what
// justifies using the fast model at paper scale. For each configuration we
// report the model's saturation throughput and the DES goodput of a
// loss-adaptive client, plus the cache-hit fractions both predict.

#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "client/workload_driver.h"
#include "core/rack.h"
#include "core/saturation.h"
#include "core/sweep.h"

namespace netcache {
namespace {

struct Scenario {
  const char* name;
  double zipf;
  size_t cache;
};

struct Measured {
  double goodput;
  double hit_fraction;
  uint64_t events;
  double wall_ms;
};

constexpr size_t kServers = 8;
constexpr double kRate = 10e3;
constexpr uint64_t kKeys = 20'000;

Measured RunDes(bench::BenchHarness& harness, const Scenario& sc) {
  RackConfig cfg;
  cfg.sim_threads = harness.sim_threads();
  cfg.num_servers = kServers;
  cfg.num_clients = 1;
  cfg.cache_enabled = sc.cache > 0;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.server_template.service_rate_qps = kRate;
  cfg.server_template.queue_capacity = 64;
  cfg.client_template.reply_timeout = 5 * kMillisecond;
  cfg.controller_config.cache_capacity = sc.cache > 0 ? sc.cache : 1;
  Rack rack(cfg);
  harness.RecordEffectiveSimThreads(bench::EffectiveSimThreads(rack.sim()));
  rack.Populate(kKeys, 128);

  WorkloadConfig wl;
  wl.num_keys = kKeys;
  wl.zipf_alpha = sc.zipf;
  wl.seed = 5;
  WorkloadGenerator gen(wl);
  if (sc.cache > 0) {
    std::vector<Key> hot;
    for (uint64_t id : gen.popularity().TopKeys(sc.cache)) {
      hot.push_back(Key::FromUint64(id));
    }
    rack.WarmCache(hot);
  }

  DriverConfig dc;
  dc.rate_qps = 30e3;
  dc.adaptive = true;  // find the saturation point like §7.4's client
  dc.adjust_interval = 100 * kMillisecond;
  dc.rate_step = 0.15;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  driver.Start();
  // 4 s to converge, then 4 s of measurement.
  rack.sim().RunUntil(4 * kSecond);
  uint64_t completed0 = driver.completed();
  uint64_t hits0 = rack.tor().counters().cache_hits;
  rack.sim().RunUntil(8 * kSecond);
  driver.Stop();

  Measured m;
  m.goodput = static_cast<double>(driver.completed() - completed0) / 4.0;
  uint64_t served = driver.completed() - completed0;
  m.hit_fraction = served > 0 ? static_cast<double>(rack.tor().counters().cache_hits - hits0) /
                                    static_cast<double>(served)
                              : 0.0;
  m.events = rack.sim().events_processed();
  m.wall_ms = 0;
  return m;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Cross-validation: capacity model vs packet-level DES "
      "(8 servers x 10 KQPS, 20K keys)");
  std::printf("%-24s | %11s %11s %7s | %8s %8s\n", "scenario", "model-tput", "DES-tput",
              "ratio", "mdl-hit", "DES-hit");
  const std::vector<Scenario> scenarios = {
      {"uniform, no cache", 0.0, 0},
      {"zipf-0.99, no cache", 0.99, 0},
      {"zipf-0.9, 100 cached", 0.9, 100},
      {"zipf-0.99, 100 cached", 0.99, 100},
      {"zipf-0.99, 400 cached", 0.99, 400},
  };
  // The DES runs dominate the wall clock and are independent: fan them out.
  std::vector<Measured> des_runs =
      RunSweep(scenarios, harness.sweep_options(),
               [&harness](const Scenario& sc, uint64_t /*seed*/, size_t /*index*/) {
        auto start = std::chrono::steady_clock::now();
        Measured m = RunDes(harness, sc);
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        m.wall_ms = elapsed.count();
        return m;
      });
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    SaturationConfig mc;
    mc.num_partitions = kServers;
    mc.server_rate_qps = kRate;
    mc.num_keys = kKeys;
    mc.zipf_alpha = sc.zipf;
    mc.cache_size = sc.cache;
    mc.exact_ranks = 4096;
    mc.switch_capacity_qps = 1e9;  // the DES switch is unbounded here
    SaturationResult model = SolveSaturation(mc);
    const Measured& des = des_runs[i];
    std::printf("%-24s | %11s %11s %6.2f | %7.1f%% %7.1f%%\n", sc.name,
                bench::Qps(model.total_qps).c_str(), bench::Qps(des.goodput).c_str(),
                des.goodput / model.total_qps, 100 * model.cache_hit_fraction,
                100 * des.hit_fraction);
    bench::TrialRecord rec;
    rec.label = sc.name;
    rec.Config("zipf_alpha", sc.zipf)
        .Config("cache_size", static_cast<double>(sc.cache))
        .Metric("model_qps", model.total_qps)
        .Metric("des_qps", des.goodput)
        .Metric("des_model_ratio", des.goodput / model.total_qps)
        .Metric("model_hit_fraction", model.cache_hit_fraction)
        .Metric("des_hit_fraction", des.hit_fraction);
    rec.wall_ms = des.wall_ms;
    rec.events = des.events;
    harness.AddTrialRecord(std::move(rec));
  }
  bench::PrintNote("");
  bench::PrintNote("The adaptive client settles slightly below the analytic saturation");
  bench::PrintNote("point (it backs off at 1% loss), so ratios a bit under 1.0 are");
  bench::PrintNote("expected; hit fractions should agree closely. This agreement is what");
  bench::PrintNote("licenses the capacity model at the paper's 128-server scale.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "xval_model_vs_des");
  netcache::Run(harness);
  return harness.Finish();
}
