// Figure 1 / §2 motivation: "to provide effective load balancing, a cache
// node only needs to cache O(N log N) items, but needs to be orders of
// magnitude faster than a storage node (T' >> T)".
//
// Two parts:
//  (a) The §2 arithmetic: the caching layer must absorb the hot-item load,
//      so it needs M ~= N * (T/T') nodes. We tabulate M for an in-memory
//      cache over flash (the SwitchKV setting: DRAM vs SSD), an in-memory
//      cache over an in-memory store (T' ~= T: the broken case), and a
//      switch over an in-memory store (NetCache).
//  (b) The same conclusion from the saturation model: a single cache front
//      with throughput T' caps the system when T' ~= T, and disappears as a
//      constraint when T' >> T.

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

void PartA(bench::BenchHarness& harness) {
  std::printf("\n(a) caching-layer sizing, M ~= N * T/T'  (N = 128 storage nodes)\n");
  std::printf("%-34s %12s %12s %8s\n", "configuration", "T (store)", "T' (cache)", "M");
  struct Row {
    const char* name;
    double t;
    double tp;
  };
  const Row rows[] = {
      {"flash store + DRAM cache (SwitchKV)", 100e3, 10e6},
      {"DRAM store + DRAM cache", 10e6, 10e6},
      {"DRAM store + switch cache (NetCache)", 10e6, 2e9},
  };
  for (const Row& row : rows) {
    double m = 128.0 * row.t / row.tp;
    std::printf("%-34s %12s %12s %8.2f\n", row.name, bench::Qps(row.t).c_str(),
                bench::Qps(row.tp).c_str(), m);
    harness.AddTrial(std::string("sizing/") + row.name)
        .Config("store_qps", row.t)
        .Config("cache_qps", row.tp)
        .Metric("cache_nodes_needed", m);
  }
  bench::PrintNote("");
  bench::PrintNote("DRAM-over-flash needs ~1 cache node; DRAM-over-DRAM needs a cache layer");
  bench::PrintNote("as big as the store (cost + M-way coherence); the switch needs one box.");
}

void PartB(bench::BenchHarness& harness) {
  std::printf("\n(b) saturation model: one cache front of rate T' over 128 x 10 MQPS\n");
  std::printf("%-34s | %12s %9s\n", "cache technology (T')", "system tput", "gain");
  SaturationConfig cfg;
  cfg.num_partitions = 128;
  cfg.server_rate_qps = 10e6;
  cfg.num_keys = 100'000'000;
  cfg.zipf_alpha = 0.99;
  cfg.exact_ranks = 262'144;

  cfg.cache_size = 0;
  double base = SolveSaturation(cfg).total_qps;
  std::printf("%-34s | %12s %8s\n", "none (NoCache)", bench::Qps(base).c_str(), "1.0x");
  harness.AddTrial("saturation/nocache").Metric("total_qps", base).Metric("gain", 1.0);

  cfg.cache_size = 10'000;
  struct Tech {
    const char* name;
    double capacity;
  };
  const Tech techs[] = {
      {"one server-class node (10 MQPS)", 10e6},
      {"eight server-class nodes (80 MQPS)", 80e6},
      {"one switch, per §7.2 (2.24 BQPS)", 2.24e9},
  };
  for (const Tech& tech : techs) {
    cfg.switch_capacity_qps = tech.capacity;
    SaturationResult r = SolveSaturation(cfg);
    std::printf("%-34s | %12s %8.1fx  (limited by %s)\n", tech.name,
                bench::Qps(r.total_qps).c_str(), r.total_qps / base, r.limited_by.c_str());
    harness.AddTrial(std::string("saturation/") + tech.name)
        .Config("cache_capacity_qps", tech.capacity)
        .Metric("total_qps", r.total_qps)
        .Metric("gain", r.total_qps / base);
  }
  bench::PrintNote("");
  bench::PrintNote("A server-class cache front is itself the bottleneck for an in-memory");
  bench::PrintNote("store (it must absorb ~48% of ALL queries); only T' >> T — the switch —");
  bench::PrintNote("turns the cache into a pure win. This is Fig 1's argument, quantified.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig01_motivation");
  netcache::bench::PrintHeader(
      "Figure 1 / §2: why the load-balancing cache must be orders of "
      "magnitude faster than the store");
  netcache::PartA(harness);
  netcache::PartB(harness);
  return harness.Finish();
}
