// Ablation: first-fit bin-packing memory manager (Algorithm 2) under
// different value-size mixes, with and without reorganization.
//
// Measures: (a) achievable slot utilization when filling an empty pipe until
// the first allocation failure; (b) sustained utilization under insert/evict
// churn, where fragmentation accumulates; (c) how many item moves
// reorganization needs to admit a large value into a fragmented pipe.

#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "dataplane/slot_allocator.h"

namespace netcache {
namespace {

constexpr size_t kStages = 8;
constexpr size_t kRows = 4096;

size_t SampleUnits(Rng& rng, int mix) {
  switch (mix) {
    case 0:  // fixed 128 B
      return 8;
    case 1:  // uniform 16..128 B
      return 1 + rng.NextBounded(8);
    default:  // bimodal: mostly small, some full-width
      return rng.NextBernoulli(0.8) ? 1 + rng.NextBounded(2) : 8;
  }
}

const char* MixName(int mix) {
  switch (mix) {
    case 0:
      return "fixed-128B";
    case 1:
      return "uniform-16..128B";
    default:
      return "bimodal-80/20";
  }
}

void FillToFailure(bench::BenchHarness& harness, int mix) {
  SlotAllocator alloc(kStages, kRows);
  Rng rng(7);
  uint64_t id = 0;
  while (true) {
    size_t units = SampleUnits(rng, mix);
    if (!alloc.Insert(Key::FromUint64(id++), units).has_value()) {
      break;
    }
  }
  std::printf("  %-18s fill-to-failure utilization: %5.1f%%  (%zu items)\n", MixName(mix),
              100.0 * alloc.Utilization(), alloc.num_items());
  harness.AddTrial(std::string("fill/") + MixName(mix))
      .Metric("utilization", alloc.Utilization())
      .Metric("items", static_cast<double>(alloc.num_items()));
}

void ChurnUtilization(bench::BenchHarness& harness, int mix, bool defrag) {
  SlotAllocator alloc(kStages, kRows);
  Rng rng(8);
  std::vector<std::pair<uint64_t, size_t>> live;  // (key id, units)
  uint64_t id = 0;
  size_t failures = 0;
  size_t defrag_moves = 0;
  constexpr size_t kOps = 200'000;
  for (size_t op = 0; op < kOps; ++op) {
    bool insert = live.empty() || rng.NextBernoulli(0.52);
    if (insert) {
      size_t units = SampleUnits(rng, mix);
      Key key = Key::FromUint64(id);
      if (!alloc.Insert(key, units).has_value()) {
        if (defrag) {
          for (const SlotMove& move : alloc.PlanReorganization(units)) {
            if (alloc.Commit(move)) {
              ++defrag_moves;
            }
          }
        }
        if (!defrag || !alloc.Insert(key, units).has_value()) {
          ++failures;
          continue;
        }
      }
      live.emplace_back(id, units);
      ++id;
    } else {
      size_t pick = rng.NextBounded(live.size());
      alloc.Evict(Key::FromUint64(live[pick].first));
      live[pick] = live.back();
      live.pop_back();
    }
  }
  std::printf("  %-18s churn (%s): utilization %5.1f%%, failures %6zu, defrag moves %zu\n",
              MixName(mix), defrag ? "with defrag" : "no defrag  ",
              100.0 * alloc.Utilization(), failures, defrag_moves);
  harness.AddTrial(std::string("churn/") + MixName(mix) +
                   (defrag ? "/defrag" : "/no-defrag"))
      .Config("defrag", defrag ? 1 : 0)
      .Metric("utilization", alloc.Utilization())
      .Metric("failures", static_cast<double>(failures))
      .Metric("defrag_moves", static_cast<double>(defrag_moves));
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader("Ablation: Alg-2 first-fit memory manager (8 stages x 4096 rows)");
  std::printf("\n(a) fill an empty pipe until the first failed insert\n");
  for (int mix : {0, 1, 2}) {
    FillToFailure(harness, mix);
  }
  std::printf("\n(b) sustained insert/evict churn, 200K ops, ~52%% inserts\n");
  for (int mix : {0, 1, 2}) {
    ChurnUtilization(harness, mix, false);
    ChurnUtilization(harness, mix, true);
  }
  bench::PrintNote("");
  bench::PrintNote("Non-contiguous bitmaps make first-fit nearly fragmentation-free for");
  bench::PrintNote("mixed sizes; the residual failures are full-width (8-unit) values that");
  bench::PrintNote("need one whole row — exactly what §4.4.2's periodic reorganization");
  bench::PrintNote("repairs (compare failures with and without defrag).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_memory_manager");
  netcache::Run(harness);
  return harness.Finish();
}
