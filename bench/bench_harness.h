// Shared benchmark harness: machine-readable results for every fig*/abl*/tab*
// bench, feeding the JSON regression gate (scripts/bench_regress.py).
//
// Each bench registers one TrialRecord per table row / configuration point:
// a stable label, the numeric config axes, and the paper metrics it
// reproduces. DES-driven benches wrap their simulation in a TrialTimer, which
// adds wall-clock milliseconds and (via SetEvents) the simulator's
// events-processed count, from which the writer derives events_per_sec — the
// throughput measure the perf regression gate watches.
//
// Flags (parsed from main's argv; unknown flags are ignored so google-benchmark
// style flags can coexist):
//   --json=PATH        write {bench, seed, config, trials:[...]} JSON
//   --seed=N           root seed for randomized benches (default 42)
//   --threads=N        worker threads for ParallelSweep-driven benches
//   --serial           force serial trial execution
//   --sim-threads=N    parallel-DES threads inside each trial's simulator
//                      (0 = serial dispatcher)
//   --no-simd          force the scalar SIMD level for the whole process
//                      (same effect as NETCACHE_SIMD=OFF in the environment)
//   --no-egress-batch  ship multi-packet transmit groups as per-packet
//                      delivery records instead of one burst record
//                      (byte-identical outputs; the equivalence leg)
//   --profile-out=FILE wall-clock profile of the whole run as Chrome
//                      trace-event JSON (Perfetto-loadable; aggregate with
//                      tools/profile_report.py) — installed for the process
//                      lifetime, so every trial's spans land in one file
//   --profile-limit=N  timeline spans kept per recording thread
//
// The threading and SIMD knobs are recorded in the JSON's top-level "config"
// object — including `sim_threads_effective`, which DES benches set to what
// actually ran (RecordEffectiveSimThreads) when e.g. a zero-lookahead
// topology forces the serial-dispatcher fallback, and `simd_level`
// ("avx2" | "scalar"), the dispatch level the trials executed at.
// scripts/bench_regress.py refuses to compare documents whose run configs
// differ, so a parallel run can never be graded against a serial baseline
// (or vice versa), nor an AVX2 run against a scalar one, nor against a run
// whose parallel request silently degraded.
//
// Wall-clock calls live only in bench/ — the simulation library and tools are
// wall-clock-free by lint rule; benches are the one place timing is the point.

#ifndef NETCACHE_BENCH_BENCH_HARNESS_H_
#define NETCACHE_BENCH_BENCH_HARNESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/profiler.h"
#include "core/sweep.h"
#include "net/simulator.h"

namespace netcache {
namespace bench {

struct TrialRecord {
  std::string label;
  // Ordered (name, value) pairs: insertion order is preserved so JSON output
  // is deterministic for a fixed seed.
  std::vector<std::pair<std::string, double>> config;
  std::vector<std::pair<std::string, double>> metrics;
  double wall_ms = 0;   // wall-clock of the timed section; 0 = untimed
  uint64_t events = 0;  // simulator events executed; 0 = closed-form bench

  TrialRecord& Config(const std::string& name, double value) {
    config.emplace_back(name, value);
    return *this;
  }
  TrialRecord& Metric(const std::string& name, double value) {
    metrics.emplace_back(name, value);
    return *this;
  }
};

class BenchHarness {
 public:
  BenchHarness(int argc, char** argv, std::string name);

  uint64_t seed() const { return seed_; }

  // Thread options for benches that fan trials out via RunSweep.
  SweepOptions sweep_options() const {
    SweepOptions opts;
    opts.threads = threads_;
    opts.serial = serial_;
    opts.root_seed = seed_;
    return opts;
  }

  // Parallel-DES threads for each trial's own simulator (RackConfig/
  // FabricConfig::sim_threads). Orthogonal to sweep_options(): --threads fans
  // trials out, --sim-threads parallelizes inside one trial.
  size_t sim_threads() const { return sim_threads_; }

  // Whether DES trials should let links ship transmit groups as burst
  // records (Simulator::set_egress_batching); --no-egress-batch clears it.
  bool egress_batching() const { return egress_batch_; }

  // DES benches report the worker count their simulator actually used (see
  // EffectiveSimThreads below) — 0 when the partitioned schedule fell back
  // to the serial dispatcher. Thread-safe: trials may run on sweep workers.
  // Defaults to the requested --sim-threads when never called.
  void RecordEffectiveSimThreads(size_t effective) {
    effective_sim_threads_.store(effective, std::memory_order_relaxed);
  }

  // Adds a trial; the reference stays valid for the harness's lifetime
  // (records live in a deque, which never relocates existing elements).
  TrialRecord& AddTrial(const std::string& label);

  // Moves a fully-built record in (for sweep-produced results).
  void AddTrialRecord(TrialRecord record);

  // Writes the JSON file when --json was given. Returns main()'s exit code
  // contribution: 0 on success or when no JSON was requested, 1 on I/O error.
  int Finish() const;

 private:
  std::string name_;
  std::string json_path_;
  std::string profile_out_;
  uint64_t seed_ = 42;
  size_t threads_ = 0;
  size_t sim_threads_ = 0;
  std::atomic<size_t> effective_sim_threads_{0};
  bool serial_ = false;
  bool egress_batch_ = true;
  std::deque<TrialRecord> trials_;
  // Destroyed after every trial's simulator (trials are function-local).
  std::unique_ptr<Profiler> profiler_;
};

// The worker count a configured simulator actually runs with: 0 when the
// partitioned schedule is off (never configured, or the zero-lookahead
// fallback rejected it at ConfigurePartitions time).
inline size_t EffectiveSimThreads(const Simulator& sim) {
  return sim.partitioned() ? sim.sim_threads() : 0;
}

// RAII wall-clock scope for one trial's simulation section.
class TrialTimer {
 public:
  explicit TrialTimer(TrialRecord* trial)
      : trial_(trial), start_(std::chrono::steady_clock::now()) {}
  ~TrialTimer() {
    std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    trial_->wall_ms = elapsed.count();
  }

  TrialTimer(const TrialTimer&) = delete;
  TrialTimer& operator=(const TrialTimer&) = delete;

  void SetEvents(uint64_t events) { trial_->events = events; }

 private:
  TrialRecord* trial_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace netcache

#endif  // NETCACHE_BENCH_BENCH_HARNESS_H_
