// Ablation: coherence-design choices for writes to cached keys (§4.3).
//
//   write-through (async, the paper): apply write, reply, refresh the switch
//       asynchronously — write latency = one server round trip; reads on the
//       key resume hitting the cache within ~an update RTT.
//   write-through (sync, textbook):   hold the reply until the switch acks —
//       write latency pays the extra switch round trip §4.3 avoids.
//   write-around:                     never refresh; the entry stays invalid
//       until the (slow, rate-limited) control plane re-inserts it, so reads
//       keep landing on the server — §4.3's reason to reject it.
//
// Packet-level measurement: one rack, one cached hot key, a read stream plus
// periodic writes to that key; report write latency and read hit ratio.

#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/rack.h"
#include "core/sweep.h"

namespace netcache {
namespace {

Key K(uint64_t id) { return Key::FromUint64(id); }

struct Outcome {
  double write_avg_us = 0;
  double write_p99_us = 0;
  double read_hit_pct = 0;
  uint64_t events = 0;
  double wall_ms = 0;
};

Outcome RunMode(bench::BenchHarness& harness, CoherenceMode mode) {
  RackConfig cfg;
  cfg.sim_threads = harness.sim_threads();
  cfg.num_servers = 4;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 1024;
  cfg.switch_config.indexes_per_pipe = 1024;
  cfg.switch_config.stats.counter_slots = 1024;
  cfg.server_template.service_rate_qps = 200e3;
  cfg.server_template.coherence = mode;
  cfg.client_template.reply_timeout = 20 * kMillisecond;
  cfg.controller_config.cache_capacity = 64;
  // Deliberately slow control plane so write-around's reliance on
  // controller re-insertion is visible.
  cfg.controller_config.control_op_latency = 10 * kMillisecond;
  Rack rack(cfg);
  harness.RecordEffectiveSimThreads(bench::EffectiveSimThreads(rack.sim()));
  rack.Populate(1000, 64);
  rack.WarmCache({K(1)});
  rack.StartController();

  Histogram write_latency;
  uint64_t reads_sent = 0;
  Simulator& sim = rack.sim();
  // 100 ms of traffic: a read every 10 us, a write every 1 ms.
  for (int i = 0; i < 10000; ++i) {
    sim.ScheduleAt(static_cast<SimTime>(i) * 10 * kMicrosecond, [&rack, &reads_sent] {
      ++reads_sent;
      rack.client(0).Get(rack.OwnerOf(K(1)), K(1), [](const Status&, const Value&) {});
    });
  }
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(static_cast<SimTime>(i) * 1 * kMillisecond + 5 * kMicrosecond,
                   [&rack, &sim, &write_latency, i] {
                     SimTime start = sim.Now();
                     rack.client(0).Put(rack.OwnerOf(K(1)), K(1),
                                        Value::Filler(1000 + static_cast<uint64_t>(i), 64),
                                        [&write_latency, &sim, start](const Status& s, const Value&) {
                                          if (s.ok()) {
                                            write_latency.Record(sim.Now() - start);
                                          }
                                        });
                   });
  }
  sim.RunUntil(120 * kMillisecond);

  Outcome out;
  out.write_avg_us = write_latency.Mean() / 1e3;
  out.write_p99_us = static_cast<double>(write_latency.Quantile(0.99)) / 1e3;
  out.read_hit_pct = 100.0 * static_cast<double>(rack.tor().counters().cache_hits) /
                     static_cast<double>(reads_sent);
  out.events = rack.sim().events_processed();
  return out;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: §4.3 coherence designs (1 hot cached key, 100 reads/ms + "
      "1 write/ms, 10 ms/op control plane)");
  std::printf("%-28s | %12s %12s %12s\n", "design", "write avg", "write p99", "read hits");
  struct Row {
    const char* name;
    const char* label;
    CoherenceMode mode;
  };
  const std::vector<Row> rows = {
      {"write-through async (paper)", "write-through-async", CoherenceMode::kWriteThroughAsync},
      {"write-through sync", "write-through-sync", CoherenceMode::kWriteThroughSync},
      {"write-around", "write-around", CoherenceMode::kWriteAround},
  };
  std::vector<Outcome> outcomes =
      RunSweep(rows, harness.sweep_options(),
               [&harness](const Row& row, uint64_t /*seed*/, size_t /*index*/) {
        auto start = std::chrono::steady_clock::now();
        Outcome o = RunMode(harness, row.mode);
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        o.wall_ms = elapsed.count();
        return o;
      });
  for (size_t i = 0; i < rows.size(); ++i) {
    const Outcome& o = outcomes[i];
    std::printf("%-28s | %10.1fus %10.1fus %11.1f%%\n", rows[i].name, o.write_avg_us,
                o.write_p99_us, o.read_hit_pct);
    bench::TrialRecord rec;
    rec.label = rows[i].label;
    rec.Metric("write_avg_us", o.write_avg_us)
        .Metric("write_p99_us", o.write_p99_us)
        .Metric("read_hit_pct", o.read_hit_pct);
    rec.wall_ms = o.wall_ms;
    rec.events = o.events;
    harness.AddTrialRecord(std::move(rec));
  }
  bench::PrintNote("");
  bench::PrintNote("The async design keeps write latency at the plain server round trip AND");
  bench::PrintNote("read hits high (the invalid window is one update RTT). Sync pays an");
  bench::PrintNote("extra switch round trip per write; write-around forfeits the cache until");
  bench::PrintNote("the control plane re-inserts — exactly §4.3's reasoning.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_coherence");
  netcache::Run(harness);
  return harness.Finish();
}
