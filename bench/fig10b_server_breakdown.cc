// Figure 10(b): per-server throughput breakdown at saturation — NoCache under
// zipf {0.9, 0.95, 0.99} (top three panels in the paper) and NetCache under
// zipf-0.99 (bottom panel). Shows the switch cache flattening the load.
//
// We print a compact distribution summary plus a 16-bucket sparkline of the
// sorted per-server loads (128 servers, 8 per bucket).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

SaturationConfig PaperRack(double alpha, size_t cache) {
  SaturationConfig cfg;
  cfg.num_partitions = 128;
  cfg.server_rate_qps = 10e6;
  cfg.num_keys = 100'000'000;
  cfg.zipf_alpha = alpha;
  cfg.cache_size = cache;
  cfg.exact_ranks = 262'144;
  return cfg;
}

void PrintDistribution(const char* label, const SaturationResult& r,
                       bench::BenchHarness& harness, double alpha, size_t cache) {
  std::vector<double> loads = r.per_server_qps;
  std::sort(loads.begin(), loads.end());
  double min = loads.front();
  double max = loads.back();
  double sum = 0;
  for (double l : loads) {
    sum += l;
  }
  double mean = sum / static_cast<double>(loads.size());

  std::printf("%-22s total=%10s  min=%9s mean=%9s max=%9s  max/mean=%5.2f\n", label,
              bench::Qps(r.total_qps).c_str(), bench::Qps(min).c_str(),
              bench::Qps(mean).c_str(), bench::Qps(max).c_str(), max / mean);
  harness.AddTrial(label)
      .Config("zipf_alpha", alpha)
      .Config("cache_size", static_cast<double>(cache))
      .Metric("total_qps", r.total_qps)
      .Metric("min_qps", min)
      .Metric("mean_qps", mean)
      .Metric("max_qps", max)
      .Metric("imbalance", max / mean);

  // Sorted-load sparkline: 16 buckets of 8 servers each, scaled to max.
  std::printf("  load profile: ");
  static const char* kGlyphs[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
  for (size_t b = 0; b < 16; ++b) {
    double bucket = 0;
    for (size_t i = 0; i < 8; ++i) {
      bucket += loads[b * 8 + i];
    }
    bucket /= 8.0;
    int level = static_cast<int>(bucket / max * 7.999);
    std::printf("%s", kGlyphs[level]);
  }
  std::printf("  (sorted servers, low -> high)\n");
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Figure 10(b): per-server throughput at saturation (128 servers x 10 MQPS)");

  for (double alpha : {0.9, 0.95, 0.99}) {
    SaturationResult r = SolveSaturation(PaperRack(alpha, 0));
    char label[64];
    std::snprintf(label, sizeof(label), "NoCache  zipf-%.2f", alpha);
    PrintDistribution(label, r, harness, alpha, 0);
  }
  for (double alpha : {0.9, 0.95, 0.99}) {
    SaturationResult r = SolveSaturation(PaperRack(alpha, 10'000));
    char label[64];
    std::snprintf(label, sizeof(label), "NetCache zipf-%.2f", alpha);
    PrintDistribution(label, r, harness, alpha, 10'000);
  }
  bench::PrintNote("");
  bench::PrintNote("Paper: without the cache a handful of servers saturate while the rest");
  bench::PrintNote("idle; with the cache the load profile is flat (bottom panel).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig10b_server_breakdown");
  netcache::Run(harness);
  return harness.Finish();
}
