// Pipeline-fitting report (§4.4.1, §5 "Experiences with programmable
// switches"): where the compiler places every NetCache table in a
// Tofino-class 12-stage pipe, and what happens to the §5 what-ifs (wider
// register slots, bigger values, recirculation).

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "dataplane/pipeline.h"

namespace netcache {
namespace {

void Report(bench::BenchHarness& harness, const char* label, const char* title,
            const std::vector<TableSpec>& program) {
  std::printf("\n-- %s --\n", title);
  PlacementResult r = PipelineCompiler::Place(PipeSpec{}, program);
  std::printf("%s", r.ToString(program).c_str());
  if (r.feasible) {
    std::printf("  => fits in %zu of 12 stages\n", r.StagesUsed());
  }
  harness.AddTrial(label)
      .Metric("feasible", r.feasible ? 1 : 0)
      .Metric("stages_used", static_cast<double>(r.StagesUsed()));
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader("Pipeline placement: the NetCache P4 program on a 12-stage pipe");

  Report(harness, "ingress", "ingress program (cache lookup + routing)",
         NetCacheIngressProgram());
  Report(harness, "egress", "egress program (status, stats, 8 x 128-bit value stages)",
         NetCacheEgressProgram());
  Report(harness, "whatif_256bit_slots",
         "§5 what-if: 256-bit register slots (4 value stages for 128 B)",
         NetCacheEgressProgram(64 * 1024, 4, 64 * 1024, 256));
  Report(harness, "whatif_256B_values",
         "§5 what-if: 256-byte values via 16 x 128-bit stages (no recirculation)",
         NetCacheEgressProgram(64 * 1024, 16, 64 * 1024, 128));

  bench::PrintNote("");
  bench::PrintNote("The 256-byte single-pass variant does not fit: exactly the limitation");
  bench::PrintNote("that pushes larger values to packet mirroring/recirculation (§5), at the");
  bench::PrintNote("cost of throughput. Wider slots (next-gen ASICs) halve the stage count.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "tab_pipeline");
  netcache::Run(harness);
  return harness.Finish();
}
