// Figure 10(a): system throughput under uniform and Zipf {0.9, 0.95, 0.99}
// workloads, NoCache vs NetCache, with the NetCache bar split into the
// portions served by the switch cache and by the storage servers.
//
// Methodology: the capacity model of core/saturation.h, which replicates the
// paper's server-rotation arithmetic (find the bottleneck partition, scale).
// Paper setup: 128 storage servers, 10 MQPS each, 10,000 cached items,
// read-only queries (§7.3).

#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"

namespace netcache {
namespace {

SaturationConfig PaperRack() {
  SaturationConfig cfg;
  cfg.num_partitions = 128;
  cfg.server_rate_qps = 10e6;
  cfg.num_keys = 100'000'000;
  cfg.cache_size = 10'000;
  cfg.exact_ranks = 262'144;
  return cfg;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Figure 10(a): throughput, NoCache vs NetCache (128 servers x 10 MQPS, "
      "10K cached items, read-only)");
  std::printf("%-10s %12s %12s %12s %12s %8s\n", "workload", "NoCache", "NetCache",
              "(cache)", "(servers)", "gain");

  struct Row {
    const char* name;
    double alpha;
  };
  const std::vector<Row> rows = {
      {"uniform", 0.0}, {"zipf-0.9", 0.9}, {"zipf-0.95", 0.95}, {"zipf-0.99", 0.99}};

  for (const Row& row : rows) {
    SaturationConfig no_cache = PaperRack();
    no_cache.zipf_alpha = row.alpha;
    no_cache.cache_size = 0;
    SaturationResult base = SolveSaturation(no_cache);

    SaturationConfig cached = PaperRack();
    cached.zipf_alpha = row.alpha;
    SaturationResult nc = SolveSaturation(cached);

    std::printf("%-10s %12s %12s %12s %12s %7.1fx\n", row.name,
                bench::Qps(base.total_qps).c_str(), bench::Qps(nc.total_qps).c_str(),
                bench::Qps(nc.cache_qps).c_str(), bench::Qps(nc.server_qps).c_str(),
                nc.total_qps / base.total_qps);
    harness.AddTrial(row.name)
        .Config("zipf_alpha", row.alpha)
        .Metric("nocache_qps", base.total_qps)
        .Metric("netcache_qps", nc.total_qps)
        .Metric("cache_qps", nc.cache_qps)
        .Metric("server_qps", nc.server_qps)
        .Metric("gain", nc.total_qps / base.total_qps);
  }
  bench::PrintNote("");
  bench::PrintNote("Paper: NoCache collapses to 22.5% (zipf-0.95) / 15.6% (zipf-0.99) of");
  bench::PrintNote("uniform; NetCache improves throughput 3.6x / 6.5x / 10x at 0.9/0.95/0.99.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig10a_throughput");
  netcache::Run(harness);
  return harness.Finish();
}
