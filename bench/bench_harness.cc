#include "bench/bench_harness.h"

#include <cstdio>
#include <fstream>

#include "common/cli.h"
#include "common/json_writer.h"
#include "common/simd.h"

namespace netcache {
namespace bench {

BenchHarness::BenchHarness(int argc, char** argv, std::string name)
    : name_(std::move(name)) {
  ArgParser args(argc, argv);
  json_path_ = args.GetString("json", "");
  profile_out_ = args.GetString("profile-out", "");
  seed_ = static_cast<uint64_t>(args.GetInt("seed", 42));
  threads_ = static_cast<size_t>(args.GetInt("threads", 0));
  sim_threads_ = static_cast<size_t>(args.GetInt("sim-threads", 0));
  effective_sim_threads_.store(sim_threads_, std::memory_order_relaxed);
  serial_ = args.GetBool("serial", false);
  egress_batch_ = !args.GetBool("no-egress-batch", false);
  if (args.GetBool("no-simd", false)) {
    ForceScalarSimd();
  }
  if (!profile_out_.empty()) {
    Profiler::Options popts;
    popts.spans_per_lane =
        static_cast<size_t>(args.GetInt("profile-limit", 1 << 18));
    profiler_ = std::make_unique<Profiler>(popts);
    InstallProfiler(profiler_.get());
  }
}

TrialRecord& BenchHarness::AddTrial(const std::string& label) {
  trials_.push_back(TrialRecord{});
  trials_.back().label = label;
  return trials_.back();
}

void BenchHarness::AddTrialRecord(TrialRecord record) {
  trials_.push_back(std::move(record));
}

int BenchHarness::Finish() const {
  int rc = 0;
  if (profiler_ != nullptr) {
    InstallProfiler(nullptr);
    std::ofstream prof_out(profile_out_);
    if (!prof_out) {
      std::fprintf(stderr, "bench_harness: cannot open '%s' for writing\n",
                   profile_out_.c_str());
      rc = 1;
    } else {
      profiler_->WriteChromeTrace(prof_out);
      prof_out << "\n";
      if (!prof_out.good()) {
        std::fprintf(stderr, "bench_harness: write to '%s' failed\n", profile_out_.c_str());
        rc = 1;
      } else {
        std::printf("profile         %llu spans in %zu lane(s) to %s (%llu dropped)\n",
                    static_cast<unsigned long long>(profiler_->spans_recorded()),
                    profiler_->lanes_used(), profile_out_.c_str(),
                    static_cast<unsigned long long>(profiler_->spans_dropped()));
      }
    }
  }
  if (json_path_.empty()) {
    return rc;
  }
  std::ofstream out(json_path_);
  if (!out) {
    std::fprintf(stderr, "bench_harness: cannot open '%s' for writing\n", json_path_.c_str());
    return 1;
  }
  JsonWriter w(out);
  w.BeginObject();
  w.Field("bench", name_);
  w.Field("seed", seed_);
  // Run configuration. bench_regress.py hard-errors when two documents
  // disagree here: wall-clock (and, for --sim-threads, tie-break schedules)
  // are not comparable across threading setups, and scalar-vs-SIMD numbers
  // are different codepaths entirely.
  w.Name("config");
  w.BeginObject();
  w.Field("threads", static_cast<uint64_t>(threads_));
  w.Field("sim_threads", static_cast<uint64_t>(sim_threads_));
  // What the DES trials actually ran with (zero-lookahead topologies fall
  // back to the serial dispatcher); equals sim_threads unless a bench
  // reported otherwise via RecordEffectiveSimThreads.
  w.Field("sim_threads_effective",
          static_cast<uint64_t>(effective_sim_threads_.load(std::memory_order_relaxed)));
  w.Field("serial", serial_ ? 1 : 0);
  // "avx2" | "scalar" — the SIMD dispatch level the trials ran at (lowered
  // by --no-simd / NETCACHE_SIMD=OFF / a non-AVX2 host).
  w.Field("simd_level", ActiveSimdLevelName());
  // Whether links shipped transmit groups as burst delivery records. The
  // legs are byte-identical in simulated outputs but not in wall-clock, so
  // the regression gate refuses to compare across this bit.
  w.Field("egress_batch", egress_batch_ ? 1 : 0);
  w.EndObject();
  w.Name("trials");
  w.BeginArray();
  for (const TrialRecord& t : trials_) {
    w.BeginObject();
    w.Field("label", t.label);
    w.Name("config");
    w.BeginObject();
    for (const auto& [key, value] : t.config) {
      w.Field(key, value);
    }
    w.EndObject();
    w.Name("metrics");
    w.BeginObject();
    for (const auto& [key, value] : t.metrics) {
      w.Field(key, value);
    }
    w.EndObject();
    if (t.wall_ms > 0) {
      w.Field("wall_ms", t.wall_ms);
      if (t.events > 0) {
        w.Field("events", t.events);
        w.Field("events_per_sec", static_cast<double>(t.events) / (t.wall_ms / 1e3));
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "bench_harness: write to '%s' failed\n", json_path_.c_str());
    return 1;
  }
  std::printf("json            trial results to %s\n", json_path_.c_str());
  return rc;
}

}  // namespace bench
}  // namespace netcache
