// Ablation: heavy-hitter detector accuracy vs sketch width and sample rate
// (design choices of §4.4.3).
//
// Ground truth: keys whose true (unsampled) query count in one statistics
// epoch exceeds threshold / sample_rate. We measure the detector's precision
// (reported keys that are truly hot) and recall (truly hot keys reported),
// plus total reports, for the prototype's dimensions and smaller ones. Shows
// why 4 x 64K x 16 bit + sampling is enough — and what breaks when the
// sketch is starved.

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "sketch/heavy_hitter.h"

namespace netcache {
namespace {

struct Outcome {
  double precision = 0;
  double recall = 0;
  size_t reports = 0;
  size_t truly_hot = 0;
};

Outcome RunEpoch(size_t sketch_width, double sample_rate, uint32_t threshold) {
  constexpr uint64_t kNumKeys = 1'000'000;
  constexpr size_t kQueries = 2'000'000;

  HeavyHitterConfig cfg;
  cfg.sketch_width = sketch_width;
  cfg.hot_threshold = threshold;
  cfg.sample_rate = sample_rate;
  HeavyHitterDetector hh(cfg);

  ZipfRejectionInversion zipf(kNumKeys, 0.99);
  Rng rng(42);
  std::unordered_map<uint64_t, uint32_t> truth;
  std::unordered_set<uint64_t> reported;
  for (size_t i = 0; i < kQueries; ++i) {
    uint64_t id = zipf.Sample(rng);
    ++truth[id];
    if (hh.Offer(Key::FromUint64(id))) {
      reported.insert(id);
    }
  }

  double hot_cutoff = static_cast<double>(threshold) / sample_rate;
  std::unordered_set<uint64_t> truly_hot;
  for (const auto& [id, count] : truth) {
    if (count >= hot_cutoff) {
      truly_hot.insert(id);
    }
  }

  size_t true_positive = 0;
  for (uint64_t id : reported) {
    true_positive += truly_hot.count(id);
  }
  Outcome out;
  out.reports = reported.size();
  out.truly_hot = truly_hot.size();
  out.precision = reported.empty()
                      ? 1.0
                      : static_cast<double>(true_positive) / static_cast<double>(reported.size());
  out.recall = truly_hot.empty()
                   ? 1.0
                   : static_cast<double>(true_positive) / static_cast<double>(truly_hot.size());
  return out;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: heavy-hitter precision/recall vs sketch width & sample rate "
      "(zipf-0.99, 1M keys, 2M queries/epoch, threshold 128)");
  std::printf("%-10s %-8s | %9s %9s %9s %9s\n", "width", "sample", "precision", "recall",
              "reports", "true-hot");
  for (size_t width : {1024ul, 4096ul, 16384ul, 65536ul}) {
    for (double sample : {1.0, 0.5, 0.25}) {
      Outcome o = RunEpoch(width, sample, 128);
      std::printf("%-10zu %-8.2f | %9.3f %9.3f %9zu %9zu\n", width, sample, o.precision,
                  o.recall, o.reports, o.truly_hot);
      char label[48];
      std::snprintf(label, sizeof(label), "width=%zu/sample=%.2f", width, sample);
      harness.AddTrial(label)
          .Config("sketch_width", static_cast<double>(width))
          .Config("sample_rate", sample)
          .Metric("precision", o.precision)
          .Metric("recall", o.recall)
          .Metric("reports", static_cast<double>(o.reports));
    }
  }
  bench::PrintNote("");
  bench::PrintNote("Narrow sketches inflate estimates (collisions) -> precision drops;");
  bench::PrintNote("sampling trades a little recall near the threshold for 16-bit counters");
  bench::PrintNote("and fewer controller reports (§4.4.3's high-pass filter).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_sketch_accuracy");
  netcache::Run(harness);
  return harness.Finish();
}
