// Ablation: how the control-plane update rate bounds adaptation (§4.3).
//
// The paper's cache updates ride a control plane limited to ~10K table
// updates/second. This bench repeats the Fig 11(a) hot-in experiment while
// sweeping the per-operation control latency across two orders of
// magnitude, and reports the goodput in the seconds after the popularity
// flip — showing recovery stretching out as the controller slows.

#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "client/workload_driver.h"
#include "core/rack.h"
#include "core/sweep.h"

namespace netcache {
namespace {

constexpr uint64_t kNumKeys = 20'000;
constexpr size_t kCacheItems = 300;

struct HotInResult {
  std::vector<double> bins;
  uint64_t events = 0;
  double wall_ms = 0;
};

std::vector<double> RunHotIn(bench::BenchHarness& harness, SimDuration control_op_latency,
                             uint64_t* events_out) {
  RackConfig cfg;
  cfg.sim_threads = harness.sim_threads();
  cfg.num_servers = 8;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.switch_config.stats.hh.hot_threshold = 48;
  cfg.server_template.service_rate_qps = 10e3;
  cfg.server_template.queue_capacity = 64;
  cfg.client_template.reply_timeout = 5 * kMillisecond;
  cfg.controller_config.cache_capacity = kCacheItems;
  cfg.controller_config.control_op_latency = control_op_latency;
  cfg.controller_config.stats_epoch = 1 * kSecond;
  Rack rack(cfg);
  harness.RecordEffectiveSimThreads(bench::EffectiveSimThreads(rack.sim()));
  rack.Populate(kNumKeys, 128);

  WorkloadConfig wl;
  wl.num_keys = kNumKeys;
  wl.zipf_alpha = 0.99;
  wl.seed = 11;
  WorkloadGenerator gen(wl);
  std::vector<Key> hot;
  for (uint64_t id : gen.popularity().TopKeys(kCacheItems)) {
    hot.push_back(Key::FromUint64(id));
  }
  rack.WarmCache(hot);
  rack.StartController();

  DriverConfig dc;
  dc.rate_qps = 60e3;
  dc.adaptive = true;
  dc.adjust_interval = 100 * kMillisecond;
  dc.rate_step = 0.1;
  dc.min_rate_qps = 5e3;
  dc.bin_width = 1 * kSecond;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  driver.Start();

  // Steady for 5 s, then one radical hot-in of 150 keys, then 7 more seconds.
  rack.sim().ScheduleAt(5 * kSecond, [&gen] { gen.popularity().HotIn(150); });
  rack.sim().RunUntil(12 * kSecond);
  driver.Stop();

  std::vector<double> bins;
  for (size_t i = 0; i < 12; ++i) {
    bins.push_back(driver.goodput().BinSum(i));
  }
  *events_out = rack.sim().events_processed();
  return bins;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: control-plane speed vs hot-in recovery (8 x 10 KQPS, 300-item "
      "cache, 150-key hot-in at t=5s)");
  std::printf("%-16s |", "ctrl op latency");
  for (int s = 3; s < 12; ++s) {
    std::printf("  t=%-2ds", s);
  }
  std::printf("\n");
  const std::vector<SimDuration> latencies = {100 * kMicrosecond, 1 * kMillisecond,
                                              10 * kMillisecond, 50 * kMillisecond};
  std::vector<HotInResult> results =
      RunSweep(latencies, harness.sweep_options(),
               [&harness](SimDuration latency, uint64_t /*seed*/, size_t /*index*/) {
        auto start = std::chrono::steady_clock::now();
        HotInResult r;
        r.bins = RunHotIn(harness, latency, &r.events);
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        r.wall_ms = elapsed.count();
        return r;
      });
  for (size_t i = 0; i < latencies.size(); ++i) {
    const std::vector<double>& bins = results[i].bins;
    std::printf("%11.1f ms   |", static_cast<double>(latencies[i]) / 1e6);
    for (int s = 3; s < 12; ++s) {
      std::printf(" %5.0fK", bins[static_cast<size_t>(s)] / 1e3);
    }
    std::printf("\n");
    // Recovery quality: goodput in the two seconds after the flip relative to
    // the pre-flip second.
    double pre = bins[4];
    double post = (bins[5] + bins[6]) / 2.0;
    char label[48];
    std::snprintf(label, sizeof(label), "ctrl_latency_ms=%.1f",
                  static_cast<double>(latencies[i]) / 1e6);
    bench::TrialRecord rec;
    rec.label = label;
    rec.Config("control_op_latency_ms", static_cast<double>(latencies[i]) / 1e6)
        .Metric("pre_flip_goodput", pre)
        .Metric("post_flip_goodput", post)
        .Metric("recovery_ratio", pre > 0 ? post / pre : 0);
    rec.wall_ms = results[i].wall_ms;
    rec.events = results[i].events;
    harness.AddTrialRecord(std::move(rec));
  }
  bench::PrintNote("");
  bench::PrintNote("At 0.1 ms/op (10K updates/s, the paper's assumption) goodput recovers");
  bench::PrintNote("within the change second. Slowing the control plane to 10-50 ms/op");
  bench::PrintNote("(200-20 updates/s) stretches the trough across many seconds — why §4.3");
  bench::PrintNote("insists on threshold-triggered, low-churn cache updates.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_control_rate");
  netcache::Run(harness);
  return harness.Finish();
}
