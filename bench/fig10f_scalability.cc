// Figure 10(f): scaling to multiple racks (up to 32 racks x 128 servers =
// 4096 servers), comparing NoCache, Leaf-Cache (ToR only) and
// Leaf-Spine-Cache, using the multi-rack capacity model (§5, §7.3
// "Scalability": simulation, read-only, switches absorb cached queries).

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/multirack.h"

namespace netcache {
namespace {

MultiRackConfig Base(size_t racks, MultiRackMode mode) {
  MultiRackConfig cfg;
  cfg.num_racks = racks;
  cfg.servers_per_rack = 128;
  cfg.server_rate_qps = 10e6;
  cfg.tor_capacity_qps = 2.0e9;
  // One spine switch per 2 racks, as in a modest leaf-spine fabric.
  cfg.num_spines = racks > 1 ? racks / 2 : 1;
  cfg.spine_capacity_qps = 2.0e9;
  cfg.cache_items_per_switch = 10'000;
  cfg.num_keys = 1'000'000'000;
  cfg.zipf_alpha = 0.99;
  cfg.exact_ranks = 1 << 20;
  cfg.mode = mode;
  return cfg;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Figure 10(f): scalability to 32 racks (128 servers/rack, zipf-0.99, "
      "read-only)");
  std::printf("%-8s %-8s | %14s %14s %14s\n", "racks", "servers", "NoCache", "LeafCache",
              "LeafSpine");
  for (size_t racks : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    MultiRackResult none = SolveMultiRack(Base(racks, MultiRackMode::kNoCache));
    MultiRackResult leaf = SolveMultiRack(Base(racks, MultiRackMode::kLeafCache));
    MultiRackResult spine = SolveMultiRack(Base(racks, MultiRackMode::kLeafSpineCache));
    std::printf("%-8zu %-8zu | %14s %14s %14s\n", racks, racks * 128,
                bench::Qps(none.total_qps).c_str(), bench::Qps(leaf.total_qps).c_str(),
                bench::Qps(spine.total_qps).c_str());
    harness.AddTrial("racks=" + std::to_string(racks))
        .Config("racks", static_cast<double>(racks))
        .Config("servers", static_cast<double>(racks * 128))
        .Metric("nocache_qps", none.total_qps)
        .Metric("leafcache_qps", leaf.total_qps)
        .Metric("leafspine_qps", spine.total_qps);
  }

  // Who binds each configuration at 32 racks?
  MultiRackResult leaf32 = SolveMultiRack(Base(32, MultiRackMode::kLeafCache));
  MultiRackResult spine32 = SolveMultiRack(Base(32, MultiRackMode::kLeafSpineCache));
  bench::PrintNote("");
  std::printf("  at 32 racks: LeafCache limited by '%s' (tor share %s); LeafSpine limited "
              "by '%s' (spine share %s)\n",
              leaf32.limited_by.c_str(), bench::Qps(leaf32.tor_qps).c_str(),
              spine32.limited_by.c_str(), bench::Qps(spine32.spine_qps).c_str());
  bench::PrintNote("");
  bench::PrintNote("Paper: NoCache stays flat as servers are added; Leaf-Cache balances only");
  bench::PrintNote("within racks and plateaus; Leaf-Spine-Cache grows linearly.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig10f_scalability");
  netcache::Run(harness);
  return harness.Finish();
}
