// Figure 10(f): scaling to multiple racks (up to 32 racks x 128 servers =
// 4096 servers), comparing NoCache, Leaf-Cache (ToR only) and
// Leaf-Spine-Cache, using the multi-rack capacity model (§5, §7.3
// "Scalability": simulation, read-only, switches absorb cached queries).
//
// A second leg runs the same leaf-spine topology as packet-level DES
// (core/fabric.h) at a scaled-down size. These trials honour --sim-threads:
// the fabric partitions into one LP per spine (+ its client) and one per
// rack (ToR + servers), with the ToR<->spine propagation as lookahead —
// this is the wall-clock speedup demo for the parallel simulator
// (docs/PERFORMANCE.md, "Parallel DES"). Counters are schedule-independent,
// so the DES metrics are identical for any --sim-threads value.
//
// Extra flags: --des-racks=N   run ONE DES trial at N racks (0 = default
//                              sweep over {1, 4}; 16 is the speedup config)
//              --des-duration-ms=M  simulated time per DES trial (default 200)
//              --lp-checks     arm the LP-ownership sanitizer for the DES
//                              trials (common/lp_ownership.h; CI's TSan leg
//                              runs the 8-worker config with it on)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "client/workload_driver.h"
#include "common/cli.h"
#include "common/lp_ownership.h"
#include "core/fabric.h"
#include "core/multirack.h"
#include "workload/generator.h"

namespace netcache {
namespace {

MultiRackConfig Base(size_t racks, MultiRackMode mode) {
  MultiRackConfig cfg;
  cfg.num_racks = racks;
  cfg.servers_per_rack = 128;
  cfg.server_rate_qps = 10e6;
  cfg.tor_capacity_qps = 2.0e9;
  // One spine switch per 2 racks, as in a modest leaf-spine fabric.
  cfg.num_spines = racks > 1 ? racks / 2 : 1;
  cfg.spine_capacity_qps = 2.0e9;
  cfg.cache_items_per_switch = 10'000;
  cfg.num_keys = 1'000'000'000;
  cfg.zipf_alpha = 0.99;
  cfg.exact_ranks = 1 << 20;
  cfg.mode = mode;
  return cfg;
}

// One packet-level trial of the leaf-spine fabric. Read-only (per §7.3),
// spine caches warmed with the globally hottest keys, one open-loop driver
// per spine client so no generator is shared across partitions.
void RunDesTrial(bench::BenchHarness& harness, size_t racks, SimDuration duration) {
  constexpr uint64_t kNumKeys = 10'000;
  constexpr size_t kWarmKeys = 64;

  FabricConfig cfg;
  cfg.num_racks = racks;
  cfg.servers_per_rack = 4;
  cfg.num_spines = racks >= 8 ? 4 : 2;
  cfg.mode = FabricCacheMode::kSpineOnly;
  for (SwitchConfig* sc : {&cfg.tor_config, &cfg.spine_config}) {
    sc->num_pipes = 1;
    sc->cache_capacity = 1024;
    sc->indexes_per_pipe = 1024;
    sc->stats.counter_slots = 1024;
  }
  cfg.controller_config.cache_capacity = kWarmKeys;
  cfg.server_template.service_rate_qps = 200e3;
  // Cross-rack fiber: 2 us of propagation on every ToR<->spine hop. Under
  // --sim-threads this is the lookahead, so each window batches ~2 us of
  // events per partition between barriers.
  cfg.fabric_propagation = 2 * kMicrosecond;
  cfg.sim_threads = harness.sim_threads();
  Fabric fabric(cfg);
  harness.RecordEffectiveSimThreads(bench::EffectiveSimThreads(fabric.sim()));
  fabric.Populate(kNumKeys, 128);

  // Per-client generators: same popularity law, decorrelated streams.
  std::vector<std::unique_ptr<WorkloadGenerator>> gens;
  std::vector<std::unique_ptr<WorkloadDriver>> drivers;
  DriverConfig dc;
  dc.rate_qps = 400e3;  // per client, read-only
  for (size_t s = 0; s < fabric.num_clients(); ++s) {
    WorkloadConfig wl;
    wl.num_keys = kNumKeys;
    wl.zipf_alpha = 0.99;
    wl.seed = harness.seed() + 1000 * (s + 1);
    gens.push_back(std::make_unique<WorkloadGenerator>(wl));
    drivers.push_back(std::make_unique<WorkloadDriver>(
        &fabric.sim(), &fabric.client(s), gens.back().get(), fabric.OwnerFn(), dc));
  }
  std::vector<Key> hot;
  for (uint64_t id : gens[0]->popularity().TopKeys(kWarmKeys)) {
    hot.push_back(Key::FromUint64(id));
  }
  fabric.WarmCaches(hot);

  bench::TrialRecord rec;
  rec.label = "des_racks=" + std::to_string(racks);
  uint64_t completed = 0;
  {
    bench::TrialTimer timer(&rec);
    for (auto& d : drivers) {
      d->Start();
    }
    fabric.sim().RunUntil(duration);
    for (auto& d : drivers) {
      d->Stop();
      completed += d->completed();
    }
    fabric.sim().RunUntil(duration + 10 * kMillisecond);
    timer.SetEvents(fabric.sim().events_processed());
  }

  double secs = static_cast<double>(duration) / 1e9;
  std::printf("%-8zu %-8zu | DES %s over %.0f ms: spine hits %llu, server reads %llu "
              "(sim-threads=%zu, %zu LPs)\n",
              racks, racks * cfg.servers_per_rack, bench::Qps(completed / secs).c_str(),
              secs * 1e3, static_cast<unsigned long long>(fabric.TotalSpineHits()),
              static_cast<unsigned long long>(fabric.TotalServerReads()),
              fabric.sim().sim_threads(), fabric.sim().num_lps());
  rec.Config("racks", static_cast<double>(racks))
      .Config("spines", static_cast<double>(cfg.num_spines))
      .Config("duration_ms", secs * 1e3)
      .Metric("goodput_qps", static_cast<double>(completed) / secs)
      .Metric("completed", static_cast<double>(completed))
      .Metric("spine_hits", static_cast<double>(fabric.TotalSpineHits()))
      .Metric("tor_hits", static_cast<double>(fabric.TotalTorHits()))
      .Metric("server_reads", static_cast<double>(fabric.TotalServerReads()));
  uint64_t windows = fabric.sim().windows_run();
  uint64_t merged = 0;
  for (size_t lp = 1; lp <= fabric.sim().num_lps(); ++lp) {
    merged += fabric.sim().lp_windows_merged(lp);
  }
  rec.Metric("windows", static_cast<double>(windows))
      .Metric("windows_merged", static_cast<double>(merged))
      .Metric("avg_events_per_window",
              windows > 0 ? static_cast<double>(fabric.sim().events_processed()) /
                                static_cast<double>(windows)
                          : 0.0);
  harness.AddTrialRecord(std::move(rec));
}

void Run(bench::BenchHarness& harness, size_t des_racks, SimDuration des_duration) {
  bench::PrintHeader(
      "Figure 10(f): scalability to 32 racks (128 servers/rack, zipf-0.99, "
      "read-only)");
  std::printf("%-8s %-8s | %14s %14s %14s\n", "racks", "servers", "NoCache", "LeafCache",
              "LeafSpine");
  for (size_t racks : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    MultiRackResult none = SolveMultiRack(Base(racks, MultiRackMode::kNoCache));
    MultiRackResult leaf = SolveMultiRack(Base(racks, MultiRackMode::kLeafCache));
    MultiRackResult spine = SolveMultiRack(Base(racks, MultiRackMode::kLeafSpineCache));
    std::printf("%-8zu %-8zu | %14s %14s %14s\n", racks, racks * 128,
                bench::Qps(none.total_qps).c_str(), bench::Qps(leaf.total_qps).c_str(),
                bench::Qps(spine.total_qps).c_str());
    harness.AddTrial("racks=" + std::to_string(racks))
        .Config("racks", static_cast<double>(racks))
        .Config("servers", static_cast<double>(racks * 128))
        .Metric("nocache_qps", none.total_qps)
        .Metric("leafcache_qps", leaf.total_qps)
        .Metric("leafspine_qps", spine.total_qps);
  }

  // Who binds each configuration at 32 racks?
  MultiRackResult leaf32 = SolveMultiRack(Base(32, MultiRackMode::kLeafCache));
  MultiRackResult spine32 = SolveMultiRack(Base(32, MultiRackMode::kLeafSpineCache));
  bench::PrintNote("");
  std::printf("  at 32 racks: LeafCache limited by '%s' (tor share %s); LeafSpine limited "
              "by '%s' (spine share %s)\n",
              leaf32.limited_by.c_str(), bench::Qps(leaf32.tor_qps).c_str(),
              spine32.limited_by.c_str(), bench::Qps(spine32.spine_qps).c_str());
  bench::PrintNote("");
  bench::PrintNote("Paper: NoCache stays flat as servers are added; Leaf-Cache balances only");
  bench::PrintNote("within racks and plateaus; Leaf-Spine-Cache grows linearly.");

  bench::PrintNote("");
  bench::PrintHeader("Packet-level leaf-spine DES (4 servers/rack, spine caches warmed)");
  if (des_racks > 0) {
    RunDesTrial(harness, des_racks, des_duration);
  } else {
    for (size_t racks : {1ul, 4ul}) {
      RunDesTrial(harness, racks, des_duration);
    }
  }
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "fig10f_scalability");
  netcache::ArgParser args(argc, argv);
  if (args.GetBool("lp-checks", false)) {
#if NETCACHE_LP_CHECKS
    netcache::lp::SetChecksEnabled(true);
#else
    std::fprintf(stderr, "--lp-checks ignored: built with -DNETCACHE_LP_CHECKS=OFF\n");
#endif
  }
  size_t des_racks = static_cast<size_t>(args.GetInt("des-racks", 0));
  netcache::SimDuration des_duration =
      static_cast<netcache::SimDuration>(args.GetInt("des-duration-ms", 200)) *
      netcache::kMillisecond;
  netcache::Run(harness, des_racks, des_duration);
  return harness.Finish();
}
