// YCSB workload sweep: how the NetCache benefit varies across the standard
// cloud-serving mixes the paper's methodology descends from [11]. Read-
// dominated zipfian mixes (B, C) gain the most; update-heavy zipfian mixes
// (A, F) fall back to NoCache levels, matching the §7.3 write-ratio story.

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "core/saturation.h"
#include "workload/ycsb.h"

namespace netcache {
namespace {

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "YCSB mixes on a NetCache rack (128 servers x 10 MQPS, 10K cached items)");
  std::printf("%-28s %6s %6s | %12s %12s %8s\n", "workload", "write", "skewW", "NoCache",
              "NetCache", "gain");
  for (YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                         YcsbWorkload::kD, YcsbWorkload::kE, YcsbWorkload::kF}) {
    Result<WorkloadConfig> wl = YcsbConfig(w, 100'000'000);
    if (!wl.ok()) {
      std::printf("%-28s unsupported: %s\n", YcsbWorkloadName(w), wl.status().message().c_str());
      continue;
    }
    SaturationConfig cfg;
    cfg.num_partitions = 128;
    cfg.server_rate_qps = 10e6;
    cfg.num_keys = wl->num_keys;
    cfg.zipf_alpha = wl->zipf_alpha;
    cfg.write_ratio = wl->write_ratio;
    cfg.skewed_writes = wl->skewed_writes;
    cfg.exact_ranks = 262'144;

    cfg.cache_size = 0;
    SaturationResult base = SolveSaturation(cfg);
    cfg.cache_size = 10'000;
    SaturationResult nc = SolveSaturation(cfg);

    std::printf("%-28s %5.0f%% %6s | %12s %12s %7.1fx\n", YcsbWorkloadName(w),
                wl->write_ratio * 100, wl->skewed_writes ? "yes" : "no",
                bench::Qps(base.total_qps).c_str(), bench::Qps(nc.total_qps).c_str(),
                nc.total_qps / base.total_qps);
    harness.AddTrial(YcsbWorkloadName(w))
        .Config("write_ratio", wl->write_ratio)
        .Config("zipf_alpha", wl->zipf_alpha)
        .Metric("nocache_qps", base.total_qps)
        .Metric("netcache_qps", nc.total_qps)
        .Metric("gain", nc.total_qps / base.total_qps);
  }
  bench::PrintNote("");
  bench::PrintNote("Read-dominated zipfian mixes (B, C) benefit most; update-heavy zipfian");
  bench::PrintNote("mixes (A, F) see little benefit — §5's write-intensive caveat. D's");
  bench::PrintNote("uniform inserts leave the zipfian reads fully cacheable.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "tab_ycsb");
  netcache::Run(harness);
  return harness.Finish();
}
