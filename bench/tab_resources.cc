// §6 resource accounting: reproduces the prototype's on-chip memory budget —
// cache lookup table (64K 16-byte keys), 8 value stages x 64K x 16 B (8 MB),
// Count-Min sketch 4 x 64K x 16 bit, Bloom filter 3 x 256K x 1 bit — and
// checks the paper's claim that the total stays under 50% of the switch's
// on-chip memory, leaving room for traditional network functions.

#include <cstdio>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "dataplane/netcache_switch.h"

namespace netcache {
namespace {

void PrintRow(const char* item, size_t bits, size_t total) {
  std::printf("  %-34s %10.2f KB  (%4.1f%%)\n", item,
              static_cast<double>(bits) / 8.0 / 1024.0,
              100.0 * static_cast<double>(bits) / static_cast<double>(total));
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader("Table (from §6): switch data-plane resource usage");

  SwitchConfig cfg;  // defaults are the prototype's published dimensions
  cfg.num_pipes = 1;
  NetCacheSwitch sw(nullptr, "prototype", cfg);
  ResourceReport r = sw.Resources();

  PrintRow("cache lookup table (64K entries)", r.lookup_bits, r.total_bits);
  PrintRow("value stages (8 x 64K x 16 B)", r.value_bits, r.total_bits);
  PrintRow("cache status bits", r.status_bits, r.total_bits);
  PrintRow("value size registers", r.size_reg_bits, r.total_bits);
  PrintRow("per-key counters (64K x 16 bit)", r.counter_bits, r.total_bits);
  PrintRow("Count-Min sketch (4 x 64K x 16 bit)", r.sketch_bits, r.total_bits);
  PrintRow("Bloom filter (3 x 256K x 1 bit)", r.bloom_bits, r.total_bits);
  std::printf("  %-34s %10.2f MB\n", "TOTAL",
              static_cast<double>(r.total_bits) / 8.0 / 1024.0 / 1024.0);

  constexpr size_t kTofinoSramBits = 22ull * 1024 * 1024 * 8;  // ~22 MB SRAM
  std::printf("\n  fraction of a Tofino-class SRAM budget (~22 MB): %.1f%%  %s\n",
              100.0 * r.FractionOf(kTofinoSramBits),
              r.FractionOf(kTofinoSramBits) < 0.5 ? "< 50% (paper's claim holds)"
                                                  : ">= 50% (!!)");
  harness.AddTrial("prototype")
      .Metric("lookup_kb", static_cast<double>(r.lookup_bits) / 8.0 / 1024.0)
      .Metric("value_kb", static_cast<double>(r.value_bits) / 8.0 / 1024.0)
      .Metric("sketch_kb", static_cast<double>(r.sketch_bits) / 8.0 / 1024.0)
      .Metric("bloom_kb", static_cast<double>(r.bloom_bits) / 8.0 / 1024.0)
      .Metric("total_mb", static_cast<double>(r.total_bits) / 8.0 / 1024.0 / 1024.0)
      .Metric("sram_fraction", r.FractionOf(kTofinoSramBits));
  bench::PrintNote("");
  bench::PrintNote("Paper: \"our data plane implementation uses less than 50% of the");
  bench::PrintNote("on-chip memory available in the Tofino ASIC\" (§6).");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "tab_resources");
  netcache::Run(harness);
  return harness.Finish();
}
