// Ablation: selective replication, the §1 alternative to caching.
//
// "One could use selective replication — i.e., replicating hot items to
// additional storage nodes. However, in addition to consuming more hardware
// resources, selective replication requires sophisticated mechanisms for
// data movement, data consistency, and query routing" (§1).
//
// Model: the top-K hottest items are replicated onto R storage nodes each
// (the owner plus R-1 hash-derived peers) and their read load splits evenly
// across replicas. We solve for saturation throughput like core/saturation
// and compare against NetCache, also counting the replica slots consumed —
// the "more hardware resources".

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_harness.h"
#include "bench/bench_util.h"
#include "common/zipf.h"
#include "core/saturation.h"
#include "proto/key.h"
#include "workload/partition.h"

namespace netcache {
namespace {

constexpr size_t kServers = 128;
constexpr double kServerRate = 10e6;
constexpr uint64_t kNumKeys = 100'000'000;
constexpr size_t kHotSet = 10'000;
constexpr size_t kExact = 262'144;

double SolveReplication(size_t replicas) {
  // pmf over the exactly tracked ranks (zipf-0.99).
  double h = GeneralizedHarmonic(10'000, 0.99) +
             (std::pow(static_cast<double>(kNumKeys) + 0.5, 0.01) -
              std::pow(10'000.5, 0.01)) /
                 0.01;
  std::vector<double> load(kServers, 0.0);
  HashPartitioner part(kServers);
  double exact_mass = 0.0;
  for (size_t r = 0; r < kExact; ++r) {
    double p = std::pow(static_cast<double>(r + 1), -0.99) / h;
    exact_mass += p;
    Key key = Key::FromUint64(r);
    if (r < kHotSet && replicas > 1) {
      // Split the key's load across `replicas` distinct nodes.
      double share = p / static_cast<double>(replicas);
      for (size_t c = 0; c < replicas; ++c) {
        size_t node = static_cast<size_t>(key.SeededHash(0xc0 + c) % kServers);
        load[node] += share;
      }
    } else {
      load[part.PartitionOf(key)] += p;
    }
  }
  double tail_per_server = std::max(0.0, 1.0 - exact_mass) / static_cast<double>(kServers);
  double max_load = 0.0;
  for (double l : load) {
    max_load = std::max(max_load, l + tail_per_server);
  }
  return kServerRate / max_load;
}

void Run(bench::BenchHarness& harness) {
  bench::PrintHeader(
      "Ablation: selective replication vs in-network caching (§1 alternative; "
      "128 servers x 10 MQPS, zipf-0.99, top-10K hot set)");
  std::printf("%-26s | %12s %16s\n", "scheme", "throughput", "extra item copies");
  double base = SolveReplication(1);
  std::printf("%-26s | %12s %16s\n", "no replication (NoCache)", bench::Qps(base).c_str(),
              "0");
  harness.AddTrial("replication=1").Config("replicas", 1).Metric("qps", base);
  for (size_t r : {2ul, 4ul, 8ul, 16ul, 32ul}) {
    double qps = SolveReplication(r);
    char copies[32];
    std::snprintf(copies, sizeof(copies), "%zu", kHotSet * (r - 1));
    char name[32];
    std::snprintf(name, sizeof(name), "replication x%zu", r);
    std::printf("%-26s | %12s %16s\n", name, bench::Qps(qps).c_str(), copies);
    harness.AddTrial("replication=" + std::to_string(r))
        .Config("replicas", static_cast<double>(r))
        .Metric("qps", qps)
        .Metric("extra_copies", static_cast<double>(kHotSet * (r - 1)));
  }

  SaturationConfig nc;
  nc.num_partitions = kServers;
  nc.server_rate_qps = kServerRate;
  nc.num_keys = kNumKeys;
  nc.zipf_alpha = 0.99;
  nc.cache_size = kHotSet;
  nc.exact_ranks = kExact;
  double nc_qps = SolveSaturation(nc).total_qps;
  std::printf("%-26s | %12s %16s\n", "NetCache (10K in switch)", bench::Qps(nc_qps).c_str(),
              "10000 (on-chip)");
  harness.AddTrial("netcache").Metric("qps", nc_qps);

  bench::PrintNote("");
  bench::PrintNote("Even 32-way replication (310K extra server-resident copies, plus the §1");
  bench::PrintNote("machinery for data movement, multi-copy write consistency and replica-");
  bench::PrintNote("aware routing) reaches only ~37% of NetCache: replicas add server");
  bench::PrintNote("capacity linearly while the switch serves hits off the servers entirely.");
}

}  // namespace
}  // namespace netcache

int main(int argc, char** argv) {
  netcache::bench::BenchHarness harness(argc, argv, "abl_selective_replication");
  netcache::Run(harness);
  return harness.Finish();
}
