// Multi-rack deployment (§5 "Scaling to multiple racks"): a packet-level
// leaf-spine fabric comparing no caching, ToR-only caching, and spine
// caching with replicated hot items. Read-only traffic, as in the paper's
// own scalability experiment.
//
//   $ ./examples/multi_rack_fabric

#include <cstdio>
#include <vector>

#include "client/workload_driver.h"
#include "core/fabric.h"

using namespace netcache;

namespace {

const char* ModeName(FabricCacheMode mode) {
  switch (mode) {
    case FabricCacheMode::kNone:
      return "NoCache   ";
    case FabricCacheMode::kLeafOnly:
      return "Leaf-Cache ";
    case FabricCacheMode::kSpineOnly:
      return "Spine-Cache";
  }
  return "?";
}

void RunMode(FabricCacheMode mode) {
  FabricConfig cfg;
  cfg.num_racks = 4;
  cfg.servers_per_rack = 4;
  cfg.num_spines = 2;
  cfg.mode = mode;
  for (SwitchConfig* sc : {&cfg.tor_config, &cfg.spine_config}) {
    sc->num_pipes = 1;
    sc->cache_capacity = 2048;
    sc->indexes_per_pipe = 2048;
    sc->stats.counter_slots = 2048;
  }
  cfg.server_template.service_rate_qps = 10e3;
  cfg.server_template.queue_capacity = 64;
  cfg.client_template.reply_timeout = 5 * kMillisecond;
  cfg.controller_config.cache_capacity = 128;
  Fabric fabric(cfg);

  constexpr uint64_t kKeys = 20'000;
  fabric.Populate(kKeys, 64);

  WorkloadConfig wl;
  wl.num_keys = kKeys;
  wl.zipf_alpha = 0.99;
  WorkloadGenerator gen0(wl);
  wl.seed = 43;
  WorkloadGenerator gen1(wl);

  if (mode != FabricCacheMode::kNone) {
    std::vector<Key> hot;
    for (uint64_t id : gen0.popularity().TopKeys(128)) {
      hot.push_back(Key::FromUint64(id));
    }
    fabric.WarmCaches(hot);
  }

  // One adaptive driver per spine-attached client, 1 s of traffic.
  DriverConfig dc;
  dc.rate_qps = 60e3;
  dc.adaptive = true;
  WorkloadDriver d0(&fabric.sim(), &fabric.client(0), &gen0, fabric.OwnerFn(), dc);
  WorkloadDriver d1(&fabric.sim(), &fabric.client(1), &gen1, fabric.OwnerFn(), dc);
  d0.Start();
  d1.Start();
  fabric.sim().RunUntil(1 * kSecond);
  d0.Stop();
  d1.Stop();

  uint64_t completed = d0.completed() + d1.completed();
  std::printf("%s  goodput %7.0f q/s   spine hits %7llu   tor hits %7llu   server reads %7llu\n",
              ModeName(mode), static_cast<double>(completed),
              static_cast<unsigned long long>(fabric.TotalSpineHits()),
              static_cast<unsigned long long>(fabric.TotalTorHits()),
              static_cast<unsigned long long>(fabric.TotalServerReads()));
}

}  // namespace

int main() {
  std::printf("Leaf-spine fabric: 4 racks x 4 servers (10 KQPS each), 2 spines,\n");
  std::printf("2 clients at 60 KQPS offered each, zipf-0.99 over 20K keys, 1 s.\n\n");
  RunMode(FabricCacheMode::kNone);
  RunMode(FabricCacheMode::kLeafOnly);
  RunMode(FabricCacheMode::kSpineOnly);
  std::printf("\nCaching at either tier absorbs the hot keys; spine caching does it\n");
  std::printf("without the query ever entering the destination rack, and replicates\n");
  std::printf("hot items across spines so client load spreads (§2, §5).\n");
  return 0;
}
