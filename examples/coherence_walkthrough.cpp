// Cache-coherence walkthrough: a guided, packet-by-packet tour of §4.3's
// write-through protocol, driving the switch pipeline directly so every
// step is visible.
//
//   $ ./examples/coherence_walkthrough

#include <cstdio>

#include "core/rack.h"
#include "workload/generator.h"

using namespace netcache;

namespace {

void Show(const char* step, const Rack& rack, const Key& key) {
  const NetCacheSwitch& sw = const_cast<Rack&>(rack).tor();
  std::printf("%-52s cached=%d valid=%d\n", step, sw.IsCached(key), sw.IsValid(key));
}

}  // namespace

int main() {
  RackConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 64;
  cfg.switch_config.indexes_per_pipe = 64;
  cfg.switch_config.stats.counter_slots = 64;
  cfg.controller_config.cache_capacity = 32;
  Rack rack(cfg);
  rack.Populate(16, 64);

  Key key = Key::FromUint64(3);
  IpAddress owner = rack.OwnerOf(key);
  Client& client = rack.client(0);
  Simulator& sim = rack.sim();

  std::printf("The §4.3 write-through protocol, step by step (key 3):\n\n");
  Show("0. initial state", rack, key);

  rack.WarmCache({key});
  Show("1. controller inserts the key (value fetched)", rack, key);

  client.Get(owner, key, [](const Status&, const Value& v) {
    std::printf("   -> GET served, %zu-byte value, no server touched\n", v.size());
  });
  sim.RunUntil(sim.Now() + 1 * kMillisecond);
  std::printf("   switch cache hits so far: %llu\n",
              static_cast<unsigned long long>(rack.tor().counters().cache_hits));

  // A write arrives. Trace what the switch and server agent do:
  //   switch: invalidate + rewrite op to CACHED_PUT (Alg 1, lines 10-12)
  //   server: apply write, reply to client, push kCacheUpdate, block later
  //           writes to the key until the ack lands
  //   switch: write value registers, revalidate, ack
  Value fresh = Value::Filler(999, 64);
  client.Put(owner, key, fresh, [](const Status& s, const Value&) {
    std::printf("   -> PUT acknowledged to client (%s) — before the switch refresh!\n",
                s.ToString().c_str());
  });

  // Step the simulator in small slices so we catch the invalid window.
  bool saw_invalid = false;
  for (int slice = 0; slice < 200; ++slice) {
    sim.RunUntil(sim.Now() + 100);  // 100 ns slices
    if (rack.tor().IsCached(key) && !rack.tor().IsValid(key) && !saw_invalid) {
      saw_invalid = true;
      Show("2. write in flight: switch invalidated the entry", rack, key);
      std::printf("   (reads now fall through to the server, which serializes them)\n");
    }
  }
  sim.RunUntil(sim.Now() + 5 * kMillisecond);
  Show("3. server pushed kCacheUpdate; switch revalidated", rack, key);
  std::printf("   data-plane updates: %llu, server retries: %llu, deferred writes: %llu\n",
              static_cast<unsigned long long>(rack.tor().counters().cache_updates),
              static_cast<unsigned long long>(
                  rack.server(rack.OwnerOf(key) & 0xff).stats().cache_update_retries),
              static_cast<unsigned long long>(
                  rack.server(rack.OwnerOf(key) & 0xff).stats().deferred_writes));

  client.Get(owner, key, [&fresh](const Status&, const Value& v) {
    std::printf("   -> GET returns the NEW value: %s\n", v == fresh ? "yes" : "NO (bug!)");
  });
  sim.RunUntil(sim.Now() + 1 * kMillisecond);

  std::printf("\n4. delete: entry invalidates and stays invalid (nothing to serve)\n");
  client.Delete(owner, key, [](const Status& s, const Value&) {
    std::printf("   -> DELETE acknowledged (%s)\n", s.ToString().c_str());
  });
  sim.RunUntil(sim.Now() + 5 * kMillisecond);
  Show("   after delete", rack, key);

  client.Get(owner, key, [](const Status& s, const Value&) {
    std::printf("   -> GET now reports: %s\n", s.ToString().c_str());
  });
  sim.RunUntil(sim.Now() + 5 * kMillisecond);
  return 0;
}
