// Past the restricted interface (§5): large values via chunking and
// variable-length string keys with collision verification, both layered on
// the unchanged data plane.
//
//   $ ./examples/beyond_limits

#include <cstdio>
#include <cstring>
#include <string>

#include "client/chunked_client.h"
#include "client/verified_client.h"
#include "core/rack.h"

using namespace netcache;

int main() {
  RackConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 1024;
  cfg.switch_config.indexes_per_pipe = 1024;
  cfg.switch_config.stats.counter_slots = 1024;
  cfg.switch_config.stats.hh.hot_threshold = 8;
  cfg.controller_config.cache_capacity = 128;
  Rack rack(cfg);
  rack.StartController();
  Simulator& sim = rack.sim();

  std::printf("== large values: a 4 KB document through 128-byte chunks (§5) ==\n");
  ChunkedClient chunked(&rack.client(0), rack.OwnerFn());
  std::string document;
  for (int i = 0; i < 64; ++i) {
    document += "line " + std::to_string(i) + ": the quick brown fox jumps over itself; ";
  }
  Key doc_key = Key::FromString("doc:readme");
  chunked.PutLarge(doc_key, document, [&](const Status& s) {
    std::printf("  stored %zu bytes as %zu chunks -> %s\n", document.size(),
                ChunkedClient::NumChunks(document.size()), s.ToString().c_str());
  });
  sim.RunUntil(sim.Now() + 5 * kMillisecond);

  chunked.GetLarge(doc_key, [&](const Status& s, const std::string& got) {
    std::printf("  fetched %zu bytes -> %s, content %s\n", got.size(), s.ToString().c_str(),
                got == document ? "identical" : "CORRUPTED");
  });
  sim.RunUntil(sim.Now() + 5 * kMillisecond);

  // Hammer the document: its chunks become hot and the switch caches them
  // individually, so a "large value" is served by the data plane after all.
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(static_cast<SimDuration>(i) * 50 * kMicrosecond,
                 [&chunked, doc_key] { chunked.GetLarge(doc_key, [](const Status&, const std::string&) {}); });
  }
  sim.RunUntil(sim.Now() + 30 * kMillisecond);
  size_t cached_chunks = 0;
  for (uint32_t c = 0; c < ChunkedClient::NumChunks(document.size()); ++c) {
    cached_chunks += rack.tor().IsCached(ChunkedClient::ChunkKey(doc_key, c)) ? 1 : 0;
  }
  std::printf("  after a hot streak, %zu/%zu chunks live in the switch cache "
              "(switch hits: %llu)\n",
              cached_chunks, ChunkedClient::NumChunks(document.size()),
              static_cast<unsigned long long>(rack.tor().counters().cache_hits));

  std::printf("\n== variable-length keys with collision detection (§5) ==\n");
  VerifiedClient verified(&rack.client(0), rack.OwnerFn());
  verified.Put("session:user=alice;device=phone", "token-12345", [](const Status& s) {
    std::printf("  PUT long string key -> %s\n", s.ToString().c_str());
  });
  sim.RunUntil(sim.Now() + 2 * kMillisecond);
  verified.Get("session:user=alice;device=phone", [](const Status& s, const std::string& v) {
    std::printf("  GET long string key -> %s value=%s\n", s.ToString().c_str(), v.c_str());
  });
  sim.RunUntil(sim.Now() + 2 * kMillisecond);

  // Forge a 16-byte-key collision and watch the client catch it.
  Key hashed = Key::FromString("victim-key");
  Value forged;
  uint64_t wrong_fp = VerifiedClient::Fingerprint("attacker-key");
  forged.set_size(VerifiedClient::kFingerprintSize + 4);
  std::memcpy(forged.data(), &wrong_fp, sizeof(wrong_fp));
  std::memcpy(forged.data() + 8, "evil", 4);
  rack.client(0).Put(rack.OwnerOf(hashed), hashed, forged, [](const Status&, const Value&) {});
  sim.RunUntil(sim.Now() + 2 * kMillisecond);
  verified.Get("victim-key", [](const Status& s, const std::string&) {
    std::printf("  GET colliding key -> %s (the §5 safety check)\n", s.ToString().c_str());
  });
  sim.RunUntil(sim.Now() + 2 * kMillisecond);
  return 0;
}
