// Quickstart: stand up a simulated NetCache rack, talk to it through the
// client library (Get/Put/Delete with string keys, like Memcached/Redis),
// and watch the switch serve the hot key.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <string>

#include "core/rack.h"

using namespace netcache;

int main() {
  // A small rack: 4 storage servers behind one NetCache ToR switch.
  RackConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 1024;
  cfg.switch_config.indexes_per_pipe = 1024;
  cfg.switch_config.stats.counter_slots = 1024;
  cfg.switch_config.stats.hh.hot_threshold = 8;  // adopt hot keys quickly
  cfg.controller_config.cache_capacity = 64;
  Rack rack(cfg);
  rack.StartController();

  Client& client = rack.client(0);
  Simulator& sim = rack.sim();

  // The client addresses the server that owns the key; the switch is
  // transparent. Keys are strings; values up to 128 bytes.
  auto owner = [&rack](const std::string& key) { return rack.OwnerOf(Key::FromString(key)); };

  std::printf("== put a few items ==\n");
  for (const auto& [k, v] : {std::pair<std::string, std::string>{"user:42", "alice"},
                             {"user:43", "bob"},
                             {"post:7", "hello netcache"}}) {
    client.Put(owner(k), k, v, [k = k](const Status& s, const Value&) {
      std::printf("  PUT %-8s -> %s\n", k.c_str(), s.ToString().c_str());
    });
  }
  sim.RunUntil(sim.Now() + 1 * kMillisecond);

  std::printf("\n== read them back ==\n");
  for (const std::string k : {"user:42", "post:7", "missing"}) {
    client.Get(owner(k), k, [k](const Status& s, const Value& v) {
      std::printf("  GET %-8s -> %s%s%s\n", k.c_str(), s.ToString().c_str(),
                  s.ok() ? " value=" : "", s.ok() ? std::string(v.AsStringView()).c_str() : "");
    });
  }
  sim.RunUntil(sim.Now() + 1 * kMillisecond);

  std::printf("\n== hammer one key until the switch caches it ==\n");
  for (int i = 0; i < 200; ++i) {
    sim.Schedule(static_cast<SimDuration>(i) * 20 * kMicrosecond, [&client, &owner] {
      client.Get(owner("post:7"), "post:7", [](const Status&, const Value&) {});
    });
  }
  sim.RunUntil(sim.Now() + 10 * kMillisecond);

  const SwitchCounters& sc = rack.tor().counters();
  std::printf("  switch: %llu reads, %llu cache hits, %llu misses, %llu hot reports\n",
              static_cast<unsigned long long>(sc.reads),
              static_cast<unsigned long long>(sc.cache_hits),
              static_cast<unsigned long long>(sc.cache_misses),
              static_cast<unsigned long long>(sc.hot_reports));
  std::printf("  'post:7' cached at the ToR: %s\n",
              rack.tor().IsCached(Key::FromString("post:7")) ? "yes" : "no");

  std::printf("\n== a write invalidates, refreshes, and stays coherent ==\n");
  client.Put(owner("post:7"), "post:7", "edited!", [](const Status& s, const Value&) {
    std::printf("  PUT post:7  -> %s\n", s.ToString().c_str());
  });
  sim.RunUntil(sim.Now() + 1 * kMillisecond);
  client.Get(owner("post:7"), "post:7", [](const Status&, const Value& v) {
    std::printf("  GET post:7  -> value=%s (served by the refreshed cache)\n",
                std::string(v.AsStringView()).c_str());
  });
  sim.RunUntil(sim.Now() + 1 * kMillisecond);
  std::printf("  data-plane cache updates applied: %llu\n",
              static_cast<unsigned long long>(rack.tor().counters().cache_updates));
  return 0;
}
