// Flash crowd: popularity changes under the system's feet (§7.4's hot-in,
// told as a story). A news site's key-value tier hums along on yesterday's
// hot articles; at t=5s a breaking story makes a batch of cold keys the
// hottest in the system. Watch the in-network heavy-hitter detector spot
// them and the controller rotate the switch cache, second by second.
//
//   $ ./examples/dynamic_popularity

#include <cstdio>
#include <vector>

#include "client/workload_driver.h"
#include "core/rack.h"

using namespace netcache;

int main() {
  RackConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 1;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.switch_config.stats.hh.hot_threshold = 32;
  cfg.server_template.service_rate_qps = 10e3;
  cfg.server_template.queue_capacity = 64;
  cfg.client_template.reply_timeout = 5 * kMillisecond;
  cfg.controller_config.cache_capacity = 200;
  cfg.controller_config.stats_epoch = 1 * kSecond;
  Rack rack(cfg);

  constexpr uint64_t kArticles = 20'000;
  rack.Populate(kArticles, 128);

  WorkloadConfig wl;
  wl.num_keys = kArticles;
  wl.zipf_alpha = 0.99;
  wl.seed = 9;
  WorkloadGenerator gen(wl);

  // Warm the cache with yesterday's top stories, then start the controller.
  std::vector<Key> top;
  for (uint64_t id : gen.popularity().TopKeys(200)) {
    top.push_back(Key::FromUint64(id));
  }
  rack.WarmCache(top);
  rack.StartController();

  DriverConfig dc;
  dc.rate_qps = 50e3;
  dc.adaptive = true;
  dc.bin_width = 1 * kSecond;
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  driver.Start();

  // t=5s: breaking news. 100 previously-cold articles become the hottest.
  rack.sim().ScheduleAt(5 * kSecond, [&gen] {
    std::printf("  *** t=5s: BREAKING NEWS — 100 cold keys jump to the top ***\n");
    gen.popularity().HotIn(100);
  });

  std::printf("sec  goodput   cache-hit%%  cached  insertions  hh-reports\n");
  uint64_t last_hits = 0;
  uint64_t last_reads = 0;
  uint64_t last_inserts = 0;
  uint64_t last_reports = 0;
  for (int sec = 0; sec < 12; ++sec) {
    rack.sim().RunUntil(static_cast<SimTime>(sec + 1) * kSecond);
    uint64_t hits = rack.tor().counters().cache_hits;
    uint64_t reads = rack.tor().counters().reads;
    uint64_t inserts = rack.controller().stats().insertions;
    uint64_t reports = rack.controller().stats().reports_received;
    double hit_pct = reads > last_reads
                         ? 100.0 * static_cast<double>(hits - last_hits) /
                               static_cast<double>(reads - last_reads)
                         : 0.0;
    std::printf("%3d  %7.0f   %9.1f  %6zu  %10llu  %10llu\n", sec,
                driver.goodput().BinSum(static_cast<size_t>(sec)), hit_pct,
                rack.controller().NumCached(),
                static_cast<unsigned long long>(inserts - last_inserts),
                static_cast<unsigned long long>(reports - last_reports));
    last_hits = hits;
    last_reads = reads;
    last_inserts = inserts;
    last_reports = reports;
  }
  driver.Stop();

  std::printf("\nThe dip at t=5s lasts under a second: the Count-Min sketch flags the new\n");
  std::printf("hot keys in the data plane, the Bloom filter dedups the reports, and the\n");
  std::printf("controller swaps them in against sampled cold victims (§4.3, §4.4.3).\n");
  return 0;
}
