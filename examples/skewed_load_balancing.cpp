// Skewed-workload load balancing: the paper's motivating scenario (§1-2).
//
// An in-memory store sharded over 8 servers serves a product catalog where a
// handful of items are viral (zipf-0.99). We drive identical traffic at a
// NoCache rack and a NetCache rack and compare per-server load, shed
// queries, and latency.
//
//   $ ./examples/skewed_load_balancing

#include <cstdio>
#include <vector>

#include "client/workload_driver.h"
#include "core/rack.h"

using namespace netcache;

namespace {

struct Outcome {
  std::vector<uint64_t> server_reads;
  uint64_t shed = 0;
  uint64_t cache_hits = 0;
  double completed = 0;
  double avg_latency_us = 0;
};

Outcome RunRack(bool cache_enabled) {
  RackConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 1;
  cfg.cache_enabled = cache_enabled;
  cfg.switch_config.num_pipes = 1;
  cfg.switch_config.cache_capacity = 4096;
  cfg.switch_config.indexes_per_pipe = 4096;
  cfg.switch_config.stats.counter_slots = 4096;
  cfg.switch_config.stats.hh.hot_threshold = 32;
  cfg.server_template.service_rate_qps = 20e3;
  cfg.server_template.queue_capacity = 64;
  cfg.controller_config.cache_capacity = 128;
  Rack rack(cfg);

  constexpr uint64_t kCatalog = 10'000;
  rack.Populate(kCatalog, 96);
  if (cache_enabled) {
    rack.StartController();
  }

  WorkloadConfig wl;
  wl.num_keys = kCatalog;
  wl.zipf_alpha = 0.99;  // viral items
  wl.seed = 3;
  WorkloadGenerator gen(wl);

  DriverConfig dc;
  dc.rate_qps = 120e3;  // just under the 8 x 20K aggregate
  WorkloadDriver driver(&rack.sim(), &rack.client(0), &gen, rack.OwnerFn(), dc);
  driver.Start();
  rack.sim().RunUntil(2 * kSecond);
  driver.Stop();
  rack.sim().RunUntil(rack.sim().Now() + 10 * kMillisecond);

  Outcome out;
  for (size_t i = 0; i < rack.num_servers(); ++i) {
    out.server_reads.push_back(rack.server(i).stats().reads);
    out.shed += rack.server(i).stats().dropped;
  }
  out.cache_hits = rack.tor().counters().cache_hits;
  out.completed = static_cast<double>(driver.completed());
  out.avg_latency_us = rack.client(0).latency().Mean() / 1e3;
  return out;
}

void Print(const char* name, const Outcome& o) {
  std::printf("\n%s\n", name);
  std::printf("  per-server reads: ");
  uint64_t max = 0;
  uint64_t min = ~0ull;
  for (uint64_t r : o.server_reads) {
    std::printf("%7llu", static_cast<unsigned long long>(r));
    max = std::max(max, r);
    min = std::min(min, r);
  }
  std::printf("\n  imbalance (max/min): %.1fx   shed queries: %llu   cache hits: %llu\n",
              min > 0 ? static_cast<double>(max) / static_cast<double>(min) : 0.0,
              static_cast<unsigned long long>(o.shed),
              static_cast<unsigned long long>(o.cache_hits));
  std::printf("  completed: %.0f queries in 2 s   avg latency: %.1f us\n", o.completed,
              o.avg_latency_us);
}

}  // namespace

int main() {
  std::printf("Viral-catalog workload (zipf-0.99) on 8 x 20 KQPS servers, 120 KQPS offered\n");
  Outcome no_cache = RunRack(false);
  Print("-- NoCache --", no_cache);
  Outcome netcache = RunRack(true);
  Print("-- NetCache (controller adopts hot items automatically) --", netcache);
  std::printf("\nNetCache completed %.1fx the queries of NoCache.\n",
              netcache.completed / no_cache.completed);
  return 0;
}
